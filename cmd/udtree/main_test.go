package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"udt"
	"udt/internal/eval"
	"udt/internal/modelio"
)

const trainCSV = `x,y,class
0.1,1;2;3,lo
0.2,2;3;4,lo
0.3,1;3;5,lo
0.4,2;2;3,lo
9.1,11;12;13,hi
9.2,12;13;14,hi
9.3,11;13;15,hi
9.4,12;12;13,hi
`

const testCSV = `x,y,class
0.15,1;2;4,lo
9.15,11;12;14,hi
`

// capture redirects stdout around fn and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 64<<10)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func writeFixtures(t *testing.T) (trainPath, testPath, modelPath string) {
	t.Helper()
	dir := t.TempDir()
	trainPath = filepath.Join(dir, "train.csv")
	testPath = filepath.Join(dir, "test.csv")
	modelPath = filepath.Join(dir, "model.json")
	if err := os.WriteFile(trainPath, []byte(trainCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(testPath, []byte(testCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	return trainPath, testPath, modelPath
}

func TestTrainPredictEvalRoundTrip(t *testing.T) {
	trainPath, testPath, modelPath := writeFixtures(t)

	out, err := capture(t, func() error {
		return train([]string{"-in", trainPath, "-out", modelPath, "-minweight", "1", "-strategy", "gp"})
	})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	if !strings.Contains(out, "trained on 8 tuples") {
		t.Fatalf("train output: %q", out)
	}
	if _, err := os.Stat(modelPath); err != nil {
		t.Fatalf("model not written: %v", err)
	}

	out, err = capture(t, func() error {
		return predict([]string{"-model", modelPath, "-in", testPath})
	})
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	if !strings.Contains(out, "tuple 1: lo") || !strings.Contains(out, "tuple 2: hi") {
		t.Fatalf("predict output: %q", out)
	}

	out, err = capture(t, func() error {
		return rules([]string{"-model", modelPath})
	})
	if err != nil {
		t.Fatalf("rules: %v", err)
	}
	if !strings.Contains(out, "IF ") || !strings.Contains(out, "THEN") {
		t.Fatalf("rules output: %q", out)
	}

	out, err = capture(t, func() error {
		return evalCmd([]string{"-model", modelPath, "-in", testPath})
	})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if !strings.Contains(out, "accuracy: 100.00%") {
		t.Fatalf("eval output: %q", out)
	}
}

// materialisedPredictOutput renders what the pre-streaming predict path
// printed: every tuple classified one by one over a fully loaded dataset.
func materialisedPredictOutput(t *testing.T, modelPath, csvPath string) string {
	t.Helper()
	mdl, err := modelio.Load(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := udt.ReadCSV(f, csvPath)
	if err != nil {
		t.Fatal(err)
	}
	classes, _, _ := mdl.Schema()
	var b bytes.Buffer
	for i, tu := range ds.Tuples {
		dist := mdl.Classify(tu)
		fmt.Fprintf(&b, "tuple %d: %s", i+1, classes[eval.Argmax(dist)])
		for c, p := range dist {
			fmt.Fprintf(&b, "  P(%s)=%.4f", classes[c], p)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// TestStreamPredictByteIdentical: the streaming predict path must produce
// byte-identical output to the pre-refactor materialised path, at batch
// sizes that exercise mid-batch, exact-batch and whole-file windows — the
// acceptance oracle of the streaming refactor.
func TestStreamPredictByteIdentical(t *testing.T) {
	trainPath, _, modelPath := writeFixtures(t)
	if _, err := capture(t, func() error {
		return train([]string{"-in", trainPath, "-out", modelPath, "-minweight", "1"})
	}); err != nil {
		t.Fatal(err)
	}
	// Predict over the training file itself: 8 tuples, both classes.
	want := materialisedPredictOutput(t, modelPath, trainPath)
	for _, batch := range []string{"1", "3", "8", "512"} {
		got, err := capture(t, func() error {
			return predict([]string{"-model", modelPath, "-in", trainPath, "-batch", batch})
		})
		if err != nil {
			t.Fatalf("batch %s: %v", batch, err)
		}
		if got != want {
			t.Fatalf("batch %s: streaming output differs from materialised path\n got: %q\nwant: %q", batch, got, want)
		}
	}
}

// TestEvalStreamsInBatches: eval must agree across batch sizes, including
// batches smaller than the class count's first appearance window.
func TestEvalStreamsInBatches(t *testing.T) {
	trainPath, testPath, modelPath := writeFixtures(t)
	if _, err := capture(t, func() error {
		return train([]string{"-in", trainPath, "-out", modelPath, "-minweight", "1"})
	}); err != nil {
		t.Fatal(err)
	}
	var outputs []string
	for _, batch := range []string{"1", "2", "512"} {
		out, err := capture(t, func() error {
			return evalCmd([]string{"-model", modelPath, "-in", testPath, "-batch", batch})
		})
		if err != nil {
			t.Fatalf("batch %s: %v", batch, err)
		}
		outputs = append(outputs, out)
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("eval output differs across batch sizes:\n%q\nvs\n%q", outputs[0], outputs[i])
		}
	}
	if !strings.Contains(outputs[0], "accuracy: 100.00% on 2 tuples") {
		t.Fatalf("eval output: %q", outputs[0])
	}
}

// TestTrainMaxTuples: -max-tuples streams the file through a reservoir; the
// same seed must train the identical model, and the tuple count must be
// capped.
func TestTrainMaxTuples(t *testing.T) {
	trainPath, _, modelPath := writeFixtures(t)
	otherPath := filepath.Join(filepath.Dir(modelPath), "other.json")
	for _, path := range []string{modelPath, otherPath} {
		out, err := capture(t, func() error {
			return train([]string{"-in", trainPath, "-out", path, "-minweight", "1", "-max-tuples", "6", "-seed", "9"})
		})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "trained on 6 tuples") {
			t.Fatalf("train -max-tuples output: %q", out)
		}
	}
	a, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(otherPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("-max-tuples with a fixed seed trained different models")
	}
	// A cap at least as large as the file loads everything.
	out, err := capture(t, func() error {
		return train([]string{"-in", trainPath, "-out", modelPath, "-minweight", "1", "-max-tuples", "100"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "trained on 8 tuples") {
		t.Fatalf("oversized -max-tuples output: %q", out)
	}
	if err := train([]string{"-in", trainPath, "-out", modelPath, "-max-tuples", "-1"}); err == nil {
		t.Error("negative -max-tuples accepted")
	}
}

// TestPredictEvalHeaderOnly: a header-only CSV must fail predict and eval
// (the materialised path rejected it as a dataset with no classes; the
// streaming path must not turn it into a silent empty success).
func TestPredictEvalHeaderOnly(t *testing.T) {
	trainPath, _, modelPath := writeFixtures(t)
	if _, err := capture(t, func() error {
		return train([]string{"-in", trainPath, "-out", modelPath, "-minweight", "1"})
	}); err != nil {
		t.Fatal(err)
	}
	emptyPath := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(emptyPath, []byte("x,y,class\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := predict([]string{"-model", modelPath, "-in", emptyPath}); err == nil || !strings.Contains(err.Error(), "no data rows") {
		t.Errorf("predict on header-only file: %v", err)
	}
	if err := evalCmd([]string{"-model", modelPath, "-in", emptyPath}); err == nil || !strings.Contains(err.Error(), "no data rows") {
		t.Errorf("eval on header-only file: %v", err)
	}
}

// TestPredictEvalSchemaMismatch: an input CSV whose attribute count differs
// from the model's must fail with a clean error, not an index panic inside
// the compiled descent.
func TestPredictEvalSchemaMismatch(t *testing.T) {
	trainPath, _, modelPath := writeFixtures(t)
	if _, err := capture(t, func() error {
		return train([]string{"-in", trainPath, "-out", modelPath, "-minweight", "1"})
	}); err != nil {
		t.Fatal(err)
	}
	narrowPath := filepath.Join(t.TempDir(), "narrow.csv")
	if err := os.WriteFile(narrowPath, []byte("x,class\n0.1,lo\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := predict([]string{"-model", modelPath, "-in", narrowPath}); err == nil || !strings.Contains(err.Error(), "model expects") {
		t.Errorf("predict with 1 of 2 attributes: %v", err)
	}
	if err := evalCmd([]string{"-model", modelPath, "-in", narrowPath}); err == nil || !strings.Contains(err.Error(), "model expects") {
		t.Errorf("eval with 1 of 2 attributes: %v", err)
	}
}

// TestPredictEvalBatchValidation: non-positive -batch knobs must fail.
func TestPredictEvalBatchValidation(t *testing.T) {
	trainPath, testPath, modelPath := writeFixtures(t)
	if _, err := capture(t, func() error {
		return train([]string{"-in", trainPath, "-out", modelPath, "-minweight", "1"})
	}); err != nil {
		t.Fatal(err)
	}
	if err := predict([]string{"-model", modelPath, "-in", testPath, "-batch", "0"}); err == nil || !strings.Contains(err.Error(), "must be >= 1") {
		t.Errorf("predict -batch 0: %v", err)
	}
	if err := evalCmd([]string{"-model", modelPath, "-in", testPath, "-workers", "0"}); err == nil || !strings.Contains(err.Error(), "must be >= 1") {
		t.Errorf("eval -workers 0: %v", err)
	}
}

// TestTrainForestRoundTrip: train -forest writes a forest container that
// predict and eval both load transparently, while rules rejects it.
func TestTrainForestRoundTrip(t *testing.T) {
	trainPath, testPath, modelPath := writeFixtures(t)

	out, err := capture(t, func() error {
		return train([]string{"-in", trainPath, "-out", modelPath, "-forest", "-trees", "7", "-minweight", "1", "-seed", "3"})
	})
	if err != nil {
		t.Fatalf("train -forest: %v", err)
	}
	if !strings.Contains(out, "7 trees") || !strings.Contains(out, "OOB accuracy") {
		t.Fatalf("train -forest output: %q", out)
	}

	out, err = capture(t, func() error {
		return predict([]string{"-model", modelPath, "-in", testPath})
	})
	if err != nil {
		t.Fatalf("predict on forest: %v", err)
	}
	if !strings.Contains(out, "tuple 1: lo") || !strings.Contains(out, "tuple 2: hi") {
		t.Fatalf("forest predict output: %q", out)
	}

	out, err = capture(t, func() error {
		return evalCmd([]string{"-model", modelPath, "-in", testPath})
	})
	if err != nil {
		t.Fatalf("eval on forest: %v", err)
	}
	if !strings.Contains(out, "forest (7 trees") || !strings.Contains(out, "accuracy: 100.00%") {
		t.Fatalf("forest eval output: %q", out)
	}

	if err := rules([]string{"-model", modelPath}); err == nil || !strings.Contains(err.Error(), "single-tree model") {
		t.Fatalf("rules on forest: %v", err)
	}
}

// TestTrainForestDeterministicAcrossParallel: -parallel drives the forest's
// member-build workers and must not change the written container.
func TestTrainForestDeterministicAcrossParallel(t *testing.T) {
	trainPath, _, modelPath := writeFixtures(t)
	serialPath := filepath.Join(filepath.Dir(modelPath), "serial-forest.json")
	for path, parallel := range map[string]string{serialPath: "1", modelPath: "4"} {
		if _, err := capture(t, func() error {
			return train([]string{"-in", trainPath, "-out", path, "-forest", "-trees", "5", "-minweight", "1", "-parallel", parallel})
		}); err != nil {
			t.Fatal(err)
		}
	}
	a, err := os.ReadFile(serialPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("-parallel changed the trained forest")
	}
}

// TestTrainForestErrors: forest knob validation.
func TestTrainForestErrors(t *testing.T) {
	trainPath, _, modelPath := writeFixtures(t)
	for name, args := range map[string][]string{
		"zero trees":        {"-in", trainPath, "-out", modelPath, "-forest", "-trees", "0"},
		"bad sample ratio":  {"-in", trainPath, "-out", modelPath, "-forest", "-sample-ratio", "2"},
		"zero sample ratio": {"-in", trainPath, "-out", modelPath, "-forest", "-sample-ratio", "0"},
		"NaN sample ratio":  {"-in", trainPath, "-out", modelPath, "-forest", "-sample-ratio", "NaN"},
		"bad attrs":         {"-in", trainPath, "-out", modelPath, "-forest", "-attrs", "99"},
		"forest with avg":   {"-in", trainPath, "-out", modelPath, "-forest", "-avg"},
	} {
		if err := train(args); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTrainAveragingFlag(t *testing.T) {
	trainPath, _, modelPath := writeFixtures(t)
	if _, err := capture(t, func() error {
		return train([]string{"-in", trainPath, "-out", modelPath, "-avg", "-minweight", "1"})
	}); err != nil {
		t.Fatalf("train -avg: %v", err)
	}
}

func TestTrainMeasures(t *testing.T) {
	trainPath, _, modelPath := writeFixtures(t)
	for _, m := range []string{"entropy", "gini", "gainratio"} {
		if _, err := capture(t, func() error {
			return train([]string{"-in", trainPath, "-out", modelPath, "-measure", m, "-minweight", "1"})
		}); err != nil {
			t.Fatalf("measure %s: %v", m, err)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if err := train([]string{}); err == nil {
		t.Error("missing -in not caught")
	}
	if err := train([]string{"-in", "/nonexistent.csv"}); err == nil {
		t.Error("missing file not caught")
	}
	trainPath, _, modelPath := writeFixtures(t)
	if err := train([]string{"-in", trainPath, "-out", modelPath, "-measure", "bogus"}); err == nil {
		t.Error("bad measure not caught")
	}
	if err := train([]string{"-in", trainPath, "-out", modelPath, "-strategy", "bogus"}); err == nil {
		t.Error("bad strategy not caught")
	}
}

func TestPredictErrors(t *testing.T) {
	if err := predict([]string{}); err == nil {
		t.Error("missing -in not caught")
	}
	if err := predict([]string{"-in", "x.csv", "-model", "/nonexistent.json"}); err == nil {
		t.Error("missing model not caught")
	}
}

func TestEvalUnknownClass(t *testing.T) {
	trainPath, _, modelPath := writeFixtures(t)
	if _, err := capture(t, func() error {
		return train([]string{"-in", trainPath, "-out", modelPath, "-minweight", "1"})
	}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	badPath := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(badPath, []byte("x,y,class\n1,2,mystery\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := evalCmd([]string{"-model", modelPath, "-in", badPath}); err == nil {
		t.Error("unknown test class not caught")
	}
}

func TestCVSubcommand(t *testing.T) {
	trainPath, _, _ := writeFixtures(t)
	out, err := capture(t, func() error {
		return cvCmd([]string{"-in", trainPath, "-folds", "2", "-avg"})
	})
	if err != nil {
		t.Fatalf("cv: %v", err)
	}
	for _, want := range []string{"UDT 2-fold CV accuracy", "AVG 2-fold CV accuracy", "macro F1", "precision"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cv output missing %q:\n%s", want, out)
		}
	}
}

func TestCVErrors(t *testing.T) {
	if err := cvCmd([]string{}); err == nil {
		t.Error("missing -in not caught")
	}
	trainPath, _, _ := writeFixtures(t)
	if err := cvCmd([]string{"-in", trainPath, "-measure", "bogus"}); err == nil {
		t.Error("bad measure not caught")
	}
	if err := cvCmd([]string{"-in", trainPath, "-strategy", "bogus"}); err == nil {
		t.Error("bad strategy not caught")
	}
	if err := cvCmd([]string{"-in", trainPath, "-folds", "99"}); err == nil {
		t.Error("too many folds not caught")
	}
}

func TestParseHelpers(t *testing.T) {
	if m, err := parseMeasure(""); err != nil || m != 0 {
		t.Error("empty measure should default to entropy")
	}
	if s, err := parseStrategy(""); err != nil || s != 0 {
		t.Error("empty strategy should default to udt")
	}
	if _, err := parseMeasure("nope"); err == nil {
		t.Error("bad measure accepted")
	}
	if _, err := parseStrategy("nope"); err == nil {
		t.Error("bad strategy accepted")
	}
}

// TestParallelismFlagValidation: non-positive -workers/-parallel must fail
// with a clear error instead of silently running the serial zero-value path.
func TestParallelismFlagValidation(t *testing.T) {
	trainPath, _, modelPath := writeFixtures(t)
	for _, args := range [][]string{
		{"-in", trainPath, "-out", modelPath, "-workers", "0"},
		{"-in", trainPath, "-out", modelPath, "-workers", "-3"},
		{"-in", trainPath, "-out", modelPath, "-parallel", "0"},
	} {
		err := train(args)
		if err == nil {
			t.Errorf("train %v: non-positive knob not caught", args)
		} else if !strings.Contains(err.Error(), "must be >= 1") {
			t.Errorf("train %v: unclear error %q", args, err)
		}
	}
	if err := cvCmd([]string{"-in", trainPath, "-folds", "2", "-workers", "0"}); err == nil || !strings.Contains(err.Error(), "must be >= 1") {
		t.Errorf("cv -workers 0: got %v", err)
	}
	if err := cvCmd([]string{"-in", trainPath, "-folds", "2", "-parallel", "-1"}); err == nil || !strings.Contains(err.Error(), "must be >= 1") {
		t.Errorf("cv -parallel -1: got %v", err)
	}
}

// TestTrainWithWorkers: the parallel knobs must produce the same model as a
// serial run.
func TestTrainWithWorkers(t *testing.T) {
	trainPath, _, modelPath := writeFixtures(t)
	dir := filepath.Dir(modelPath)
	serialPath := filepath.Join(dir, "serial.json")
	if _, err := capture(t, func() error {
		return train([]string{"-in", trainPath, "-out", serialPath, "-minweight", "1"})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error {
		return train([]string{"-in", trainPath, "-out", modelPath, "-minweight", "1", "-workers", "4", "-parallel", "2"})
	}); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(serialPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("parallel training produced a different model than serial")
	}
}
