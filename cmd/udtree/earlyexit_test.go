package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"udt/internal/modelio"
)

// TestPredictEarlyExit: -early-exit over a boosted model must print the same
// classes as full evaluation, one members-evaluated count per tuple, and a
// mean-members summary — and refuse single-tree models.
func TestPredictEarlyExit(t *testing.T) {
	trainPath, testPath, modelPath := writeFixtures(t)
	if _, err := capture(t, func() error {
		return train([]string{"-in", trainPath, "-out", modelPath, "-boost", "-rounds", "5", "-maxdepth", "2", "-minweight", "1"})
	}); err != nil {
		t.Fatal(err)
	}

	// SAMME may stop before the round budget (a perfect weak learner ends
	// the run), so read the member count off the trained model.
	mdl, err := modelio.Load(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	stages := mdl.(modelio.Staged).StageCount()

	full, err := capture(t, func() error {
		return predict([]string{"-model", modelPath, "-in", testPath})
	})
	if err != nil {
		t.Fatal(err)
	}
	early, err := capture(t, func() error {
		return predict([]string{"-model", modelPath, "-in", testPath, "-early-exit"})
	})
	if err != nil {
		t.Fatalf("predict -early-exit: %v", err)
	}

	fullLines := strings.Split(strings.TrimSpace(full), "\n")
	earlyLines := strings.Split(strings.TrimSpace(early), "\n")
	if len(earlyLines) != len(fullLines)+1 {
		t.Fatalf("early exit printed %d lines, want %d tuples + summary:\n%s", len(earlyLines), len(fullLines), early)
	}
	for i, fl := range fullLines {
		// "tuple N: class" prefixes must agree; the suffixes differ (dist vs
		// members).
		wantPrefix := strings.SplitN(fl, "  ", 2)[0]
		if !strings.HasPrefix(earlyLines[i], wantPrefix+" (") {
			t.Fatalf("line %d: early %q does not match full %q", i+1, earlyLines[i], wantPrefix)
		}
		if !strings.Contains(earlyLines[i], fmt.Sprintf("/%d members)", stages)) {
			t.Fatalf("line %d: %q carries no members count", i+1, earlyLines[i])
		}
	}
	summary := earlyLines[len(earlyLines)-1]
	if !strings.HasPrefix(summary, "early exit: mean ") || !strings.Contains(summary, fmt.Sprintf("of %d members", stages)) {
		t.Fatalf("summary line = %q", summary)
	}

	// The ndjson format must emit the udtserve early-exit stream protocol
	// with no summary line.
	nd, err := capture(t, func() error {
		return predict([]string{"-model", modelPath, "-in", testPath, "-format", "ndjson", "-early-exit"})
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(nd))
	n := 0
	for sc.Scan() {
		n++
		var r modelio.StreamResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("ndjson line %d: %v (%q)", n, err, sc.Text())
		}
		if r.Line != n || r.Class == "" || r.Error != "" {
			t.Fatalf("ndjson line %d = %+v", n, r)
		}
		if r.MembersEvaluated < 1 || r.MembersEvaluated > stages {
			t.Fatalf("ndjson line %d: membersEvaluated = %d", n, r.MembersEvaluated)
		}
		if r.Dist != nil {
			t.Fatalf("ndjson line %d carries a distribution", n)
		}
	}
	if n != len(fullLines) {
		t.Fatalf("ndjson produced %d lines, want %d", n, len(fullLines))
	}

	// Single trees have nothing to stage.
	treePath := strings.TrimSuffix(modelPath, ".json") + "-tree.json"
	if _, err := capture(t, func() error {
		return train([]string{"-in", trainPath, "-out", treePath, "-minweight", "1"})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error {
		return predict([]string{"-model", treePath, "-in", testPath, "-early-exit"})
	}); err == nil || !strings.Contains(err.Error(), "requires an ensemble") {
		t.Fatalf("single-tree -early-exit error = %v", err)
	}
}
