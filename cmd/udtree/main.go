// Command udtree trains, inspects and applies uncertain decision trees on
// CSV data (see internal/data for the cell syntax: plain floats for point
// values, "x@mass;x@mass;..." for sampled pdfs).
//
// Usage:
//
//	udtree train   -in train.csv -out model.json [-avg] [-measure entropy] [-strategy es] [-max-tuples N]
//	udtree train   -in train.csv -out model.json -forest [-trees 25] [-sample-ratio 1] [-attrs K]
//	udtree train   -in train.csv -out model.json -boost [-rounds 10] [-learning-rate 1]
//	udtree predict -model model.json -in test.csv [-batch 512] [-format human|ndjson] [-early-exit]
//	udtree rules   -model model.json
//	udtree eval    -model model.json -in test.csv [-batch 512]
//	udtree convert -in model.json -out model.udt [-to auto|json|binary]
//
// predict, eval, rules and convert accept single-tree models and the
// versioned ensemble containers written by train -forest (bagged, uniform
// votes) and train -boost (SAMME, weighted votes), in either the JSON
// interchange format or the binary serving container (see internal/binfmt);
// the format is sniffed from the file, never from its name. predict and
// eval stream the input CSV through the compiled engine in fixed-size
// batches, so file size never bounds memory.
// predict -format ndjson emits one JSON object per tuple in exactly the
// format of udtserve's POST /classify/stream responses, so CLI output pipes
// into the same downstream consumers. train -max-tuples N streams the file
// into a seeded uniform reservoir sample of at most N resident tuples.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"slices"
	"time"

	"udt"
	"udt/internal/boost"
	"udt/internal/cliutil"
	"udt/internal/eval"
	"udt/internal/modelio"
	"udt/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = train(os.Args[2:])
	case "predict":
		err = predict(os.Args[2:])
	case "rules":
		err = rules(os.Args[2:])
	case "eval":
		err = evalCmd(os.Args[2:])
	case "convert":
		err = convert(os.Args[2:])
	case "cv":
		err = cvCmd(os.Args[2:])
	case "-version", "--version", "version":
		fmt.Println(cliutil.VersionString("udtree"))
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "udtree:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  udtree train   -in train.csv -out model.json [-avg] [-measure entropy|gini|gainratio] [-strategy udt|bp|lp|gp|es] [-maxdepth N] [-minweight W] [-postprune] [-workers N] [-parallel N]
                 [-forest] [-trees 25] [-sample-ratio 1] [-attrs K] [-seed N] [-max-tuples N]
                 [-boost] [-rounds 10] [-learning-rate 1] [-progress]
  udtree predict -model model.json -in test.csv [-batch 512] [-workers N] [-format human|ndjson] [-early-exit]
  udtree rules   -model model.json
  udtree eval    -model model.json -in test.csv [-batch 512] [-workers N]
  udtree convert -in model.json -out model.udt [-to auto|json|binary]
  udtree cv      -in data.csv [-folds 10] [-avg] [-measure ...] [-strategy ...] [-seed N] [-workers N] [-parallel N]
  udtree -version`)
}

func parseMeasure(s string) (udt.Measure, error) {
	switch s {
	case "entropy", "":
		return udt.Entropy, nil
	case "gini":
		return udt.Gini, nil
	case "gainratio":
		return udt.GainRatio, nil
	}
	return 0, fmt.Errorf("unknown measure %q", s)
}

func parseStrategy(s string) (udt.Strategy, error) {
	return cliutil.ParseStrategy(s)
}

func loadCSV(path string) (*udt.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return udt.ReadCSV(f, path)
}

// writeModel marshals any model document (tree or forest) to disk.
func writeModel(path string, model any) error {
	blob, err := json.MarshalIndent(model, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

func train(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	in := fs.String("in", "", "training CSV")
	out := fs.String("out", "model.json", "output model file")
	avg := fs.Bool("avg", false, "use the Averaging baseline (collapse pdfs to means)")
	measure := fs.String("measure", "entropy", "dispersion measure")
	strategy := fs.String("strategy", "es", "split search strategy")
	maxDepth := fs.Int("maxdepth", 0, "maximum tree depth (0 = unlimited)")
	minWeight := fs.Float64("minweight", 4, "minimum node weight to split")
	postPrune := fs.Bool("postprune", true, "pessimistic post-pruning")
	workers := fs.Int("workers", 1, "intra-node split-search workers (>= 1)")
	parallel := fs.Int("parallel", 1, "concurrent subtree builds (>= 1)")
	forestMode := fs.Bool("forest", false, "train a bagged ensemble instead of a single tree")
	trees := fs.Int("trees", 25, "forest: ensemble size (>= 1)")
	sampleRatio := fs.Float64("sample-ratio", 1, "forest: bootstrap sample size as a fraction of the training set, in (0, 1]")
	attrs := fs.Int("attrs", 0, "forest: random attribute subset size per tree (0 = all)")
	boostMode := fs.Bool("boost", false, "train a boosted weighted ensemble (SAMME) instead of a single tree")
	rounds := fs.Int("rounds", 10, "boost: maximum boosting rounds (>= 1)")
	learningRate := fs.Float64("learning-rate", 1, "boost: shrinkage on the member vote weights (> 0)")
	seed := fs.Int64("seed", 1, "RNG seed for -forest bootstrap/attribute sampling and the -max-tuples reservoir")
	maxTuples := fs.Int("max-tuples", 0, "cap resident training tuples: stream the file and keep a uniform reservoir sample of this size (0 = load everything)")
	progress := fs.Bool("progress", false, "narrate training on stderr (per-member lines, boosting rounds, split-search timing summary)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliutil.RequireString("train: -in", *in); err != nil {
		return err
	}
	if *maxTuples < 0 {
		return fmt.Errorf("train: -max-tuples must be >= 0 (got %d)", *maxTuples)
	}
	if err := cliutil.CheckPositive("train: -workers", *workers); err != nil {
		return err
	}
	if err := cliutil.CheckPositive("train: -parallel", *parallel); err != nil {
		return err
	}
	if *forestMode && *boostMode {
		return fmt.Errorf("train: -forest and -boost are mutually exclusive")
	}
	if *forestMode {
		if err := cliutil.CheckPositive("train: -trees", *trees); err != nil {
			return err
		}
		// Rejected here because the library treats 0 as "use the default";
		// an explicit 0 on the command line is a mistake, not a default.
		if !(*sampleRatio > 0 && *sampleRatio <= 1) {
			return fmt.Errorf("train: -sample-ratio %v out of (0, 1]", *sampleRatio)
		}
		if *avg {
			return fmt.Errorf("train: -forest and -avg are mutually exclusive")
		}
	}
	if *boostMode {
		if err := cliutil.CheckPositive("train: -rounds", *rounds); err != nil {
			return err
		}
		if !(*learningRate > 0) {
			return fmt.Errorf("train: -learning-rate %v must be > 0", *learningRate)
		}
		if *avg {
			return fmt.Errorf("train: -boost and -avg are mutually exclusive")
		}
	}
	var ds *udt.Dataset
	if *maxTuples > 0 {
		// Stream the file through a bounded reservoir instead of
		// materialising it: resident tuples never exceed -max-tuples.
		src, closer, err := openCSVSource(*in)
		if err != nil {
			return err
		}
		ds, err = udt.Reservoir(src, *maxTuples, *seed)
		closer.Close()
		if err != nil {
			return err
		}
	} else {
		var err error
		ds, err = loadCSV(*in)
		if err != nil {
			return err
		}
	}
	m, err := parseMeasure(*measure)
	if err != nil {
		return err
	}
	st, err := parseStrategy(*strategy)
	if err != nil {
		return err
	}
	cfg := udt.Config{
		Measure:     m,
		Strategy:    st,
		MaxDepth:    *maxDepth,
		MinWeight:   *minWeight,
		PostPrune:   *postPrune,
		Workers:     *workers,
		Parallelism: *parallel,
	}
	// The hook observes training without influencing it, so the trained
	// model is byte-identical with or without -progress.
	var prog *obs.TrainProgress
	if *progress {
		prog = obs.NewTrainProgress(os.Stderr)
		cfg.Progress = prog.Hook()
	}
	summarize := func() {
		if prog != nil {
			prog.Summary(os.Stderr)
		}
	}
	flagSet := func(name string) bool {
		set := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == name {
				set = true
			}
		})
		return set
	}
	if *forestMode {
		// -parallel drives concurrent member builds; members build their own
		// subtrees serially so the goroutine budget stays -parallel × -workers,
		// the same contract as a single-tree build.
		memberCfg := cfg
		memberCfg.Parallelism = 1
		// Bagging prefers unpruned low-bias members, so the single-tree
		// -postprune default of true is flipped off unless the user set the
		// flag explicitly.
		if !flagSet("postprune") {
			memberCfg.PostPrune = false
		}
		f, err := udt.TrainForest(ds, udt.ForestConfig{
			Trees:        *trees,
			SampleRatio:  *sampleRatio,
			AttrsPerTree: *attrs,
			Seed:         *seed,
			Workers:      *parallel,
			TreeConfig:   memberCfg,
		})
		if err != nil {
			return err
		}
		if err := writeModel(*out, f); err != nil {
			return err
		}
		summarize()
		s := f.Stats()
		fmt.Printf("trained forest on %d tuples: %d trees, %d nodes, depth %d, OOB accuracy %.2f%% (Brier %.4f, %d tuples) -> %s\n",
			ds.Len(), f.NumTrees(), s.Nodes, s.Depth,
			f.OOB.Accuracy*100, f.OOB.Brier, f.OOB.Evaluated, *out)
		return nil
	}
	if *boostMode {
		// Boosting needs weak members: an unlimited unpruned tree fits the
		// training set perfectly and stops boosting after one round. The
		// shallow-unpruned policy lives in boost.WeakMemberConfig; explicit
		// -maxdepth/-postprune flags override it.
		memberCfg := boost.WeakMemberConfig(cfg)
		if flagSet("maxdepth") {
			memberCfg.MaxDepth = *maxDepth
		}
		if flagSet("postprune") {
			memberCfg.PostPrune = *postPrune
		}
		f, err := udt.TrainBoosted(ds, udt.BoostConfig{
			Rounds:       *rounds,
			LearningRate: *learningRate,
			Workers:      *workers,
			TreeConfig:   memberCfg,
		})
		if err != nil {
			return err
		}
		if err := writeModel(*out, f); err != nil {
			return err
		}
		summarize()
		s := f.Stats()
		ws := f.Weights()
		fmt.Printf("trained boosted ensemble on %d tuples: %d/%d rounds kept, %d nodes, depth %d, vote weights %.3f..%.3f -> %s\n",
			ds.Len(), f.NumTrees(), *rounds, s.Nodes, s.Depth,
			slices.Min(ws), slices.Max(ws), *out)
		return nil
	}
	var tree *udt.Tree
	if *avg {
		tree, err = udt.BuildAveraging(ds, cfg)
	} else {
		tree, err = udt.Build(ds, cfg)
	}
	if err != nil {
		return err
	}
	if err := writeModel(*out, tree); err != nil {
		return err
	}
	summarize()
	fmt.Printf("trained on %d tuples: %d nodes, %d leaves, depth %d, %d entropy calcs -> %s\n",
		ds.Len(), tree.Stats.Nodes, tree.Stats.Leaves, tree.Stats.Depth,
		tree.Stats.Search.EntropyCalcs(), *out)
	return nil
}

// openCSVSource opens a CSV file as a row stream; the caller closes the
// returned closer when done.
func openCSVSource(path string) (*udt.CSVSource, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	src, err := udt.NewCSVSource(f, path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return src, f, nil
}

func predict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	model := fs.String("model", "model.json", "model file")
	in := fs.String("in", "", "input CSV (class column may hold placeholders)")
	batch := fs.Int("batch", streamBatch, "tuples resident at a time on the streaming path (>= 1)")
	workers := fs.Int("workers", runtime.NumCPU(), "concurrent classification workers per batch (>= 1)")
	format := fs.String("format", "human", `output format: "human" (one annotated line per tuple) or "ndjson" (the udtserve /classify/stream protocol)`)
	earlyExit := fs.Bool("early-exit", false, "predict with staged early exit (ensemble models only): byte-identical classes, members-evaluated counts instead of distributions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliutil.RequireString("predict: -in", *in); err != nil {
		return err
	}
	if err := cliutil.CheckPositive("predict: -batch", *batch); err != nil {
		return err
	}
	if err := cliutil.CheckPositive("predict: -workers", *workers); err != nil {
		return err
	}
	var newEmit func(io.Writer) emitFunc
	switch *format {
	case "human":
		newEmit = humanEmitter
	case "ndjson":
		newEmit = ndjsonEmitter
	default:
		return fmt.Errorf("predict: unknown -format %q (want human or ndjson)", *format)
	}
	mdl, err := modelio.Load(*model)
	if err != nil {
		return err
	}
	src, closer, err := openCSVSource(*in)
	if err != nil {
		return err
	}
	defer closer.Close()
	if *earlyExit {
		staged, ok := mdl.(modelio.Staged)
		if !ok {
			return fmt.Errorf("predict: -early-exit requires an ensemble model, got %s", mdl.Describe())
		}
		return streamPredictEarlyExit(os.Stdout, staged, src, *batch, *workers, *format)
	}
	return streamPredict(os.Stdout, mdl, src, *batch, *workers, newEmit)
}

// checkSchema rejects an input stream whose attribute arity differs from
// the model's — the compiled engine indexes tuple attributes by schema
// position, so a mismatch would panic mid-descent instead of erroring.
func checkSchema(mdl modelio.Model, src udt.RowSource) error {
	_, numAttrs, catAttrs := mdl.Schema()
	if len(src.NumAttrs()) != len(numAttrs) || len(src.CatAttrs()) != len(catAttrs) {
		return fmt.Errorf("%s has %d numeric / %d categorical attributes, model expects %d / %d",
			src.Name(), len(src.NumAttrs()), len(src.CatAttrs()), len(numAttrs), len(catAttrs))
	}
	return nil
}

// streamBatch is the default number of tuples resident at a time on the
// streaming predict/eval paths: enough to fill the compiled engine's
// atomic-cursor worker blocks, small enough that file size never matters.
const streamBatch = 512

// emitFunc renders one classified tuple: its 1-based ordinal, the model's
// class labels and the classification distribution. Emitters are built once
// per output stream (not per tuple) so they can hold per-stream state.
type emitFunc func(n int, classes []string, dist []float64) error

// humanEmitter prints the legacy annotated format, one tuple per line.
func humanEmitter(w io.Writer) emitFunc {
	return func(n int, classes []string, dist []float64) error {
		fmt.Fprintf(w, "tuple %d: %s", n, classes[eval.Argmax(dist)])
		for c, p := range dist {
			fmt.Fprintf(w, "  P(%s)=%.4f", classes[c], p)
		}
		_, err := fmt.Fprintln(w)
		return err
	}
}

// ndjsonEmitter prints one modelio.StreamResult document per tuple — the
// exact line udtserve's /classify/stream would answer for the same tuple at
// the same position, so CLI output and server responses interchange
// downstream. One encoder serves the whole stream, as the server does.
func ndjsonEmitter(w io.Writer) emitFunc {
	enc := json.NewEncoder(w)
	return func(n int, classes []string, dist []float64) error {
		return enc.Encode(modelio.NewStreamResult(n, classes, dist))
	}
}

// streamPredict pushes the source through the compiled engine in fixed-size
// batches, printing one line per tuple through a newEmit(w) emitter. Output
// is identical to classifying tuple-by-tuple over a materialised dataset
// (ClassifyBatch is positionally identical to Classify), but only one batch
// is ever resident.
func streamPredict(w io.Writer, mdl modelio.Model, src udt.RowSource, batch, workers int, newEmit func(io.Writer) emitFunc) error {
	classes, _, _ := mdl.Schema()
	if err := checkSchema(mdl, src); err != nil {
		return err
	}
	emit := newEmit(w)
	n := 0
	err := udt.CollectChunked(src, batch, func(chunk *udt.Dataset) error {
		for _, dist := range mdl.ClassifyBatch(chunk.Tuples, workers) {
			n++
			if err := emit(n, classes, dist); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if n == 0 {
		// The materialised path rejected header-only files (a dataset with
		// no classes fails validation); an empty stream must not look like a
		// successful run.
		return fmt.Errorf("%s has no data rows", src.Name())
	}
	return nil
}

// streamPredictEarlyExit is streamPredict for -early-exit mode: classes are
// byte-identical to full evaluation, but each tuple reports how many
// ensemble members were evaluated instead of a distribution (early exit
// stops before the full distribution exists). The human format appends a
// mean-members summary line; ndjson emits udtserve's early-exit stream
// protocol with no summary, keeping the two surfaces byte-compatible.
func streamPredictEarlyExit(w io.Writer, mdl modelio.Staged, src udt.RowSource, batch, workers int, format string) error {
	classes, _, _ := mdl.Schema()
	if err := checkSchema(mdl, src); err != nil {
		return err
	}
	var enc *json.Encoder
	if format == "ndjson" {
		enc = json.NewEncoder(w)
	}
	stages := mdl.StageCount()
	n, members := 0, 0
	err := udt.CollectChunked(src, batch, func(chunk *udt.Dataset) error {
		preds, evaluated := mdl.PredictBatchEarlyExit(chunk.Tuples, workers)
		for i, p := range preds {
			n++
			members += evaluated[i]
			if enc != nil {
				if err := enc.Encode(modelio.NewStagedResult(n, classes, p, evaluated[i])); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "tuple %d: %s (%d/%d members)\n", n, classes[p], evaluated[i], stages); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("%s has no data rows", src.Name())
	}
	if enc == nil {
		fmt.Fprintf(w, "early exit: mean %.2f of %d members evaluated over %d tuples\n",
			float64(members)/float64(n), stages, n)
	}
	return nil
}

func rules(args []string) error {
	fs := flag.NewFlagSet("rules", flag.ExitOnError)
	model := fs.String("model", "model.json", "model file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mdl, err := modelio.Load(*model)
	if err != nil {
		return err
	}
	defer modelio.Close(mdl)
	// TreeSource rather than a concrete type: binary-loaded trees have no
	// pointer tree resident and decompile one on demand.
	src, ok := mdl.(modelio.TreeSource)
	if !ok {
		return fmt.Errorf("rules: %s is a %s; rule extraction needs a single-tree model", *model, mdl.Describe())
	}
	tree, err := src.SourceTree()
	if err != nil {
		return err
	}
	for _, r := range tree.Rules() {
		fmt.Println(r)
	}
	return nil
}

// convert rewrites a model file between the JSON interchange format and the
// binary serving container. The source format is sniffed from the file; -to
// auto targets the other one. Predictions are byte-identical across the
// round trip in either direction.
func convert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "source model file (JSON or binary, sniffed)")
	out := fs.String("out", "", "destination model file")
	to := fs.String("to", "auto", `target format: "auto" (the opposite of the source), "json" or "binary"`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliutil.RequireString("convert: -in", *in); err != nil {
		return err
	}
	if err := cliutil.RequireString("convert: -out", *out); err != nil {
		return err
	}
	mdl, err := modelio.Load(*in)
	if err != nil {
		return err
	}
	defer modelio.Close(mdl)
	from := modelio.ContainerFormat(mdl)
	target := *to
	if target == "auto" {
		if from == modelio.FormatBinary {
			target = modelio.FormatJSON
		} else {
			target = modelio.FormatBinary
		}
	}
	switch target {
	case modelio.FormatBinary:
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := modelio.EncodeBinary(f, mdl); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	case modelio.FormatJSON:
		var doc any = mdl
		if src, ok := mdl.(modelio.TreeSource); ok {
			// Single-tree models serialize as the tree document, not the
			// model wrapper; binary-loaded trees decompile here.
			if doc, err = src.SourceTree(); err != nil {
				return err
			}
		}
		if err := writeModel(*out, doc); err != nil {
			return err
		}
	default:
		return fmt.Errorf("convert: unknown -to %q (want auto, json or binary)", *to)
	}
	fmt.Printf("converted %s (%s) -> %s (%s): %s\n", *in, from, *out, target, mdl.Describe())
	return nil
}

func evalCmd(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	model := fs.String("model", "model.json", "model file")
	in := fs.String("in", "", "labelled test CSV")
	batch := fs.Int("batch", streamBatch, "tuples resident at a time on the streaming path (>= 1)")
	workers := fs.Int("workers", runtime.NumCPU(), "concurrent classification workers per batch (>= 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliutil.RequireString("eval: -in", *in); err != nil {
		return err
	}
	if err := cliutil.CheckPositive("eval: -batch", *batch); err != nil {
		return err
	}
	if err := cliutil.CheckPositive("eval: -workers", *workers); err != nil {
		return err
	}
	mdl, err := modelio.Load(*model)
	if err != nil {
		return err
	}
	src, closer, err := openCSVSource(*in)
	if err != nil {
		return err
	}
	defer closer.Close()
	acc, err := streamEval(mdl, src, *batch, *workers)
	if err != nil {
		return err
	}
	classes, _, _ := mdl.Schema()
	fmt.Printf("model: %s\n", mdl.Describe())
	fmt.Printf("accuracy: %.2f%% on %d tuples\n", acc.Accuracy()*100, acc.Total())
	fmt.Printf("%-12s", "true\\pred")
	for _, c := range classes {
		fmt.Printf("%10s", c)
	}
	fmt.Println()
	for i, row := range acc.Confusion() {
		fmt.Printf("%-12s", classes[i])
		for _, v := range row {
			fmt.Printf("%10.1f", v)
		}
		fmt.Println()
	}
	return nil
}

// streamEval folds the labelled stream through the compiled batch engine
// into a running accuracy/confusion accumulator. The stream's class labels
// are remapped onto the model's label order as the vocabulary grows; a label
// the model has never seen fails the run, like the materialised path did.
func streamEval(mdl modelio.Model, src udt.RowSource, batch, workers int) (*eval.Accumulator, error) {
	classes, _, _ := mdl.Schema()
	if err := checkSchema(mdl, src); err != nil {
		return nil, err
	}
	modelIdx := make(map[string]int, len(classes))
	for i, c := range classes {
		modelIdx[c] = i
	}
	acc := eval.NewAccumulator(classes)
	var remap []int // stream class index -> model class index
	err := udt.CollectChunked(src, batch, func(chunk *udt.Dataset) error {
		for len(remap) < len(chunk.Classes) {
			label := chunk.Classes[len(remap)]
			j, ok := modelIdx[label]
			if !ok {
				return fmt.Errorf("test class %q unknown to the model", label)
			}
			remap = append(remap, j)
		}
		for _, tu := range chunk.Tuples {
			tu.Class = remap[tu.Class]
		}
		acc.Add(chunk.Tuples, mdl.PredictBatch(chunk.Tuples, workers))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if acc.Total() == 0 {
		// Match the materialised path, which failed validation on a
		// header-only file instead of reporting 0% accuracy on 0 tuples.
		return nil, fmt.Errorf("%s has no data rows", src.Name())
	}
	return acc, nil
}

func cvCmd(args []string) error {
	fs := flag.NewFlagSet("cv", flag.ExitOnError)
	in := fs.String("in", "", "labelled CSV")
	folds := fs.Int("folds", 10, "number of folds")
	avg := fs.Bool("avg", false, "evaluate the Averaging baseline as well")
	measure := fs.String("measure", "entropy", "dispersion measure")
	strategy := fs.String("strategy", "es", "split search strategy")
	maxDepth := fs.Int("maxdepth", 0, "maximum tree depth (0 = unlimited)")
	seed := fs.Int64("seed", 1, "fold shuffling seed")
	workers := fs.Int("workers", 1, "intra-node split-search workers (>= 1)")
	parallel := fs.Int("parallel", 1, "concurrent subtree builds (>= 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliutil.RequireString("cv: -in", *in); err != nil {
		return err
	}
	if err := cliutil.CheckPositive("cv: -workers", *workers); err != nil {
		return err
	}
	if err := cliutil.CheckPositive("cv: -parallel", *parallel); err != nil {
		return err
	}
	ds, err := loadCSV(*in)
	if err != nil {
		return err
	}
	m, err := parseMeasure(*measure)
	if err != nil {
		return err
	}
	st, err := parseStrategy(*strategy)
	if err != nil {
		return err
	}
	cfg := udt.Config{Measure: m, Strategy: st, MaxDepth: *maxDepth, PostPrune: true, Workers: *workers, Parallelism: *parallel}
	res, err := udt.CrossValidate(ds, *folds, cfg, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	fmt.Printf("UDT %d-fold CV accuracy: %.2f%% (%d entropy calcs, %v build)\n",
		*folds, res.Accuracy*100, res.Search.EntropyCalcs(), res.BuildTime.Round(time.Millisecond))
	if *avg {
		avgDS := ds.Means()
		resAvg, err := udt.CrossValidate(avgDS, *folds, cfg, rand.New(rand.NewSource(*seed)))
		if err != nil {
			return err
		}
		fmt.Printf("AVG %d-fold CV accuracy: %.2f%%\n", *folds, resAvg.Accuracy*100)
	}
	// Per-class metrics from a single train/test split for detail.
	tree, err := udt.Build(ds, cfg)
	if err != nil {
		return err
	}
	conf, brier, logLoss := udt.Evaluate(tree, ds)
	metrics, err := udt.PerClass(ds.Classes, conf)
	if err != nil {
		return err
	}
	fmt.Printf("\nper-class (training set):\n%-12s %9s %9s %9s %9s\n", "class", "precision", "recall", "F1", "support")
	for _, mm := range metrics {
		fmt.Printf("%-12s %9.3f %9.3f %9.3f %9.1f\n", mm.Class, mm.Precision, mm.Recall, mm.F1, mm.Support)
	}
	fmt.Printf("macro F1: %.3f  Brier: %.4f  log-loss: %.4f\n",
		udt.MacroF1(metrics), brier, logLoss)
	return nil
}
