// Command udtree trains, inspects and applies uncertain decision trees on
// CSV data (see internal/data for the cell syntax: plain floats for point
// values, "x@mass;x@mass;..." for sampled pdfs).
//
// Usage:
//
//	udtree train   -in train.csv -out model.json [-avg] [-measure entropy] [-strategy es]
//	udtree train   -in train.csv -out model.json -forest [-trees 25] [-sample-ratio 1] [-attrs K]
//	udtree predict -model model.json -in test.csv
//	udtree rules   -model model.json
//	udtree eval    -model model.json -in test.csv
//
// predict and eval accept both single-tree models and the forest containers
// written by train -forest.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"udt"
	"udt/internal/cliutil"
	"udt/internal/eval"
	"udt/internal/modelio"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = train(os.Args[2:])
	case "predict":
		err = predict(os.Args[2:])
	case "rules":
		err = rules(os.Args[2:])
	case "eval":
		err = evalCmd(os.Args[2:])
	case "cv":
		err = cvCmd(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "udtree:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  udtree train   -in train.csv -out model.json [-avg] [-measure entropy|gini|gainratio] [-strategy udt|bp|lp|gp|es] [-maxdepth N] [-minweight W] [-postprune] [-workers N] [-parallel N]
                 [-forest] [-trees 25] [-sample-ratio 1] [-attrs K] [-seed N]
  udtree predict -model model.json -in test.csv
  udtree rules   -model model.json
  udtree eval    -model model.json -in test.csv
  udtree cv      -in data.csv [-folds 10] [-avg] [-measure ...] [-strategy ...] [-seed N] [-workers N] [-parallel N]`)
}

func parseMeasure(s string) (udt.Measure, error) {
	switch s {
	case "entropy", "":
		return udt.Entropy, nil
	case "gini":
		return udt.Gini, nil
	case "gainratio":
		return udt.GainRatio, nil
	}
	return 0, fmt.Errorf("unknown measure %q", s)
}

func parseStrategy(s string) (udt.Strategy, error) {
	return cliutil.ParseStrategy(s)
}

func loadCSV(path string) (*udt.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return udt.ReadCSV(f, path)
}

// writeModel marshals any model document (tree or forest) to disk.
func writeModel(path string, model any) error {
	blob, err := json.MarshalIndent(model, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

func train(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	in := fs.String("in", "", "training CSV")
	out := fs.String("out", "model.json", "output model file")
	avg := fs.Bool("avg", false, "use the Averaging baseline (collapse pdfs to means)")
	measure := fs.String("measure", "entropy", "dispersion measure")
	strategy := fs.String("strategy", "es", "split search strategy")
	maxDepth := fs.Int("maxdepth", 0, "maximum tree depth (0 = unlimited)")
	minWeight := fs.Float64("minweight", 4, "minimum node weight to split")
	postPrune := fs.Bool("postprune", true, "pessimistic post-pruning")
	workers := fs.Int("workers", 1, "intra-node split-search workers (>= 1)")
	parallel := fs.Int("parallel", 1, "concurrent subtree builds (>= 1)")
	forestMode := fs.Bool("forest", false, "train a bagged ensemble instead of a single tree")
	trees := fs.Int("trees", 25, "forest: ensemble size (>= 1)")
	sampleRatio := fs.Float64("sample-ratio", 1, "forest: bootstrap sample size as a fraction of the training set, in (0, 1]")
	attrs := fs.Int("attrs", 0, "forest: random attribute subset size per tree (0 = all)")
	seed := fs.Int64("seed", 1, "forest: base RNG seed for bootstrap and attribute sampling")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliutil.RequireString("train: -in", *in); err != nil {
		return err
	}
	if err := cliutil.CheckPositive("train: -workers", *workers); err != nil {
		return err
	}
	if err := cliutil.CheckPositive("train: -parallel", *parallel); err != nil {
		return err
	}
	if *forestMode {
		if err := cliutil.CheckPositive("train: -trees", *trees); err != nil {
			return err
		}
		// Rejected here because the library treats 0 as "use the default";
		// an explicit 0 on the command line is a mistake, not a default.
		if !(*sampleRatio > 0 && *sampleRatio <= 1) {
			return fmt.Errorf("train: -sample-ratio %v out of (0, 1]", *sampleRatio)
		}
		if *avg {
			return fmt.Errorf("train: -forest and -avg are mutually exclusive")
		}
	}
	ds, err := loadCSV(*in)
	if err != nil {
		return err
	}
	m, err := parseMeasure(*measure)
	if err != nil {
		return err
	}
	st, err := parseStrategy(*strategy)
	if err != nil {
		return err
	}
	cfg := udt.Config{
		Measure:     m,
		Strategy:    st,
		MaxDepth:    *maxDepth,
		MinWeight:   *minWeight,
		PostPrune:   *postPrune,
		Workers:     *workers,
		Parallelism: *parallel,
	}
	if *forestMode {
		// -parallel drives concurrent member builds; members build their own
		// subtrees serially so the goroutine budget stays -parallel × -workers,
		// the same contract as a single-tree build.
		memberCfg := cfg
		memberCfg.Parallelism = 1
		// Bagging prefers unpruned low-bias members, so the single-tree
		// -postprune default of true is flipped off unless the user set the
		// flag explicitly.
		postPruneSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "postprune" {
				postPruneSet = true
			}
		})
		if !postPruneSet {
			memberCfg.PostPrune = false
		}
		f, err := udt.TrainForest(ds, udt.ForestConfig{
			Trees:        *trees,
			SampleRatio:  *sampleRatio,
			AttrsPerTree: *attrs,
			Seed:         *seed,
			Workers:      *parallel,
			TreeConfig:   memberCfg,
		})
		if err != nil {
			return err
		}
		if err := writeModel(*out, f); err != nil {
			return err
		}
		s := f.Stats()
		fmt.Printf("trained forest on %d tuples: %d trees, %d nodes, depth %d, OOB accuracy %.2f%% (Brier %.4f, %d tuples) -> %s\n",
			ds.Len(), f.NumTrees(), s.Nodes, s.Depth,
			f.OOB.Accuracy*100, f.OOB.Brier, f.OOB.Evaluated, *out)
		return nil
	}
	var tree *udt.Tree
	if *avg {
		tree, err = udt.BuildAveraging(ds, cfg)
	} else {
		tree, err = udt.Build(ds, cfg)
	}
	if err != nil {
		return err
	}
	if err := writeModel(*out, tree); err != nil {
		return err
	}
	fmt.Printf("trained on %d tuples: %d nodes, %d leaves, depth %d, %d entropy calcs -> %s\n",
		ds.Len(), tree.Stats.Nodes, tree.Stats.Leaves, tree.Stats.Depth,
		tree.Stats.Search.EntropyCalcs(), *out)
	return nil
}

func predict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	model := fs.String("model", "model.json", "model file")
	in := fs.String("in", "", "input CSV (class column may hold placeholders)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliutil.RequireString("predict: -in", *in); err != nil {
		return err
	}
	mdl, err := modelio.Load(*model)
	if err != nil {
		return err
	}
	ds, err := loadCSV(*in)
	if err != nil {
		return err
	}
	classes, _, _ := mdl.Schema()
	for i, tu := range ds.Tuples {
		dist := mdl.Classify(tu)
		fmt.Printf("tuple %d: %s", i+1, classes[eval.Argmax(dist)])
		for c, p := range dist {
			fmt.Printf("  P(%s)=%.4f", classes[c], p)
		}
		fmt.Println()
	}
	return nil
}

func rules(args []string) error {
	fs := flag.NewFlagSet("rules", flag.ExitOnError)
	model := fs.String("model", "model.json", "model file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mdl, err := modelio.Load(*model)
	if err != nil {
		return err
	}
	tm, ok := mdl.(*modelio.TreeModel)
	if !ok {
		return fmt.Errorf("rules: %s is a %s; rule extraction needs a single-tree model", *model, mdl.Describe())
	}
	for _, r := range tm.Tree.Rules() {
		fmt.Println(r)
	}
	return nil
}

func evalCmd(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	model := fs.String("model", "model.json", "model file")
	in := fs.String("in", "", "labelled test CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliutil.RequireString("eval: -in", *in); err != nil {
		return err
	}
	mdl, err := modelio.Load(*model)
	if err != nil {
		return err
	}
	ds, err := loadCSV(*in)
	if err != nil {
		return err
	}
	classes, _, _ := mdl.Schema()
	// Align the test set's class indices with the model's label order.
	if err := alignClasses(classes, ds); err != nil {
		return err
	}
	preds := mdl.PredictBatch(ds.Tuples, runtime.NumCPU())
	m := eval.ConfusionOf(classes, preds, ds)
	fmt.Printf("model: %s\n", mdl.Describe())
	fmt.Printf("accuracy: %.2f%% on %d tuples\n", eval.AccuracyOf(preds, ds)*100, ds.Len())
	fmt.Printf("%-12s", "true\\pred")
	for _, c := range classes {
		fmt.Printf("%10s", c)
	}
	fmt.Println()
	for i, row := range m {
		fmt.Printf("%-12s", classes[i])
		for _, v := range row {
			fmt.Printf("%10.1f", v)
		}
		fmt.Println()
	}
	return nil
}

func cvCmd(args []string) error {
	fs := flag.NewFlagSet("cv", flag.ExitOnError)
	in := fs.String("in", "", "labelled CSV")
	folds := fs.Int("folds", 10, "number of folds")
	avg := fs.Bool("avg", false, "evaluate the Averaging baseline as well")
	measure := fs.String("measure", "entropy", "dispersion measure")
	strategy := fs.String("strategy", "es", "split search strategy")
	maxDepth := fs.Int("maxdepth", 0, "maximum tree depth (0 = unlimited)")
	seed := fs.Int64("seed", 1, "fold shuffling seed")
	workers := fs.Int("workers", 1, "intra-node split-search workers (>= 1)")
	parallel := fs.Int("parallel", 1, "concurrent subtree builds (>= 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliutil.RequireString("cv: -in", *in); err != nil {
		return err
	}
	if err := cliutil.CheckPositive("cv: -workers", *workers); err != nil {
		return err
	}
	if err := cliutil.CheckPositive("cv: -parallel", *parallel); err != nil {
		return err
	}
	ds, err := loadCSV(*in)
	if err != nil {
		return err
	}
	m, err := parseMeasure(*measure)
	if err != nil {
		return err
	}
	st, err := parseStrategy(*strategy)
	if err != nil {
		return err
	}
	cfg := udt.Config{Measure: m, Strategy: st, MaxDepth: *maxDepth, PostPrune: true, Workers: *workers, Parallelism: *parallel}
	res, err := udt.CrossValidate(ds, *folds, cfg, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	fmt.Printf("UDT %d-fold CV accuracy: %.2f%% (%d entropy calcs, %v build)\n",
		*folds, res.Accuracy*100, res.Search.EntropyCalcs(), res.BuildTime.Round(time.Millisecond))
	if *avg {
		avgDS := ds.Means()
		resAvg, err := udt.CrossValidate(avgDS, *folds, cfg, rand.New(rand.NewSource(*seed)))
		if err != nil {
			return err
		}
		fmt.Printf("AVG %d-fold CV accuracy: %.2f%%\n", *folds, resAvg.Accuracy*100)
	}
	// Per-class metrics from a single train/test split for detail.
	tree, err := udt.Build(ds, cfg)
	if err != nil {
		return err
	}
	conf, brier, logLoss := udt.Evaluate(tree, ds)
	metrics, err := udt.PerClass(ds.Classes, conf)
	if err != nil {
		return err
	}
	fmt.Printf("\nper-class (training set):\n%-12s %9s %9s %9s %9s\n", "class", "precision", "recall", "F1", "support")
	for _, mm := range metrics {
		fmt.Printf("%-12s %9.3f %9.3f %9.3f %9.1f\n", mm.Class, mm.Precision, mm.Recall, mm.F1, mm.Support)
	}
	fmt.Printf("macro F1: %.3f  Brier: %.4f  log-loss: %.4f\n",
		udt.MacroF1(metrics), brier, logLoss)
	return nil
}

// alignClasses remaps the dataset's class indices onto the model's class
// order, failing on labels the model has never seen.
func alignClasses(classes []string, ds *udt.Dataset) error {
	idx := map[string]int{}
	for i, c := range classes {
		idx[c] = i
	}
	remap := make([]int, len(ds.Classes))
	for i, c := range ds.Classes {
		j, ok := idx[c]
		if !ok {
			return fmt.Errorf("test class %q unknown to the model", c)
		}
		remap[i] = j
	}
	for _, tu := range ds.Tuples {
		tu.Class = remap[tu.Class]
	}
	ds.Classes = classes
	return nil
}
