package main

import (
	"bufio"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"udt/internal/forest"
	"udt/internal/modelio"
)

// TestTrainBoostRoundTrip: train -boost must write a v2 weighted container
// that predict and eval both serve, with the report line naming the
// ensemble.
func TestTrainBoostRoundTrip(t *testing.T) {
	trainPath, testPath, modelPath := writeFixtures(t)

	out, err := capture(t, func() error {
		return train([]string{"-in", trainPath, "-out", modelPath, "-boost", "-rounds", "5", "-minweight", "1"})
	})
	if err != nil {
		t.Fatalf("train -boost: %v", err)
	}
	if !strings.Contains(out, "trained boosted ensemble on 8 tuples") {
		t.Fatalf("train output: %q", out)
	}

	blob, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version int    `json:"version"`
		Kind    string `json:"kind"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != forest.Version || doc.Kind != forest.KindBoosted {
		t.Fatalf("container header = %+v", doc)
	}

	mdl, err := modelio.Load(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := mdl.(*forest.Forest)
	if !ok {
		t.Fatalf("boosted model loaded as %T", mdl)
	}
	if f.Kind() != forest.KindBoosted {
		t.Fatalf("loaded kind = %q", f.Kind())
	}

	out, err = capture(t, func() error {
		return evalCmd([]string{"-model", modelPath, "-in", testPath})
	})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if !strings.Contains(out, "accuracy: 100.00%") || !strings.Contains(out, "boosted ensemble") {
		t.Fatalf("eval output: %q", out)
	}
}

// TestTrainBoostErrors covers the -boost flag validation paths.
func TestTrainBoostErrors(t *testing.T) {
	trainPath, _, modelPath := writeFixtures(t)
	cases := map[string][]string{
		"boost and forest": {"-in", trainPath, "-out", modelPath, "-boost", "-forest"},
		"boost and avg":    {"-in", trainPath, "-out", modelPath, "-boost", "-avg"},
		"zero rounds":      {"-in", trainPath, "-out", modelPath, "-boost", "-rounds", "0"},
		"bad rate":         {"-in", trainPath, "-out", modelPath, "-boost", "-learning-rate", "-0.5"},
	}
	for name, args := range cases {
		if _, err := capture(t, func() error { return train(args) }); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestPredictNDJSON: -format ndjson must emit one parseable StreamResult
// per tuple, 1-based and in input order, agreeing with the human format's
// predictions; an unknown format must be rejected.
func TestPredictNDJSON(t *testing.T) {
	trainPath, testPath, modelPath := writeFixtures(t)
	if _, err := capture(t, func() error {
		return train([]string{"-in", trainPath, "-out", modelPath, "-minweight", "1"})
	}); err != nil {
		t.Fatal(err)
	}

	out, err := capture(t, func() error {
		return predict([]string{"-model", modelPath, "-in", testPath, "-format", "ndjson"})
	})
	if err != nil {
		t.Fatalf("predict -format ndjson: %v", err)
	}
	sc := bufio.NewScanner(strings.NewReader(out))
	var results []modelio.StreamResult
	for sc.Scan() {
		var r modelio.StreamResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d is not a StreamResult: %v (%q)", len(results)+1, err, sc.Text())
		}
		results = append(results, r)
	}
	if len(results) != 2 {
		t.Fatalf("got %d NDJSON lines, want 2:\n%s", len(results), out)
	}
	for i, want := range []string{"lo", "hi"} {
		r := results[i]
		if r.Line != i+1 || r.Class != want || r.Error != "" {
			t.Fatalf("line %d = %+v, want class %q", i+1, r, want)
		}
		sum := 0.0
		for _, p := range r.Dist {
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("line %d distribution does not sum to 1: %v", i+1, r.Dist)
		}
	}

	if _, err := capture(t, func() error {
		return predict([]string{"-model", modelPath, "-in", testPath, "-format", "xml"})
	}); err == nil || !strings.Contains(err.Error(), "unknown -format") {
		t.Fatalf("unknown format error = %v", err)
	}
}

// TestPredictNDJSONGolden pins predict -format ndjson to the shared golden
// stream in testdata/stream: the exact bytes udtserve answers for the same
// tuples over POST /classify/stream (cmd/udtserve pins the server side to
// the same file). Regenerate the fixtures with `go run
// testdata/stream/gen.go` from the repo root.
func TestPredictNDJSONGolden(t *testing.T) {
	fixtures := "../../testdata/stream"
	out, err := capture(t, func() error {
		return predict([]string{
			"-model", fixtures + "/model.json",
			"-in", fixtures + "/input.csv",
			"-format", "ndjson",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(fixtures + "/golden.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Fatalf("predict -format ndjson diverges from the server stream protocol golden.\ngot:\n%swant:\n%s", out, golden)
	}
}
