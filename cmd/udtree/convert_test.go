package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestConvertRoundTrip: JSON -> binary -> JSON, with byte-identical predict
// output from every intermediate file, for single trees and forests.
func TestConvertRoundTrip(t *testing.T) {
	trainPath, testPath, modelPath := writeFixtures(t)
	dir := filepath.Dir(modelPath)

	cases := []struct {
		name  string
		extra []string
	}{
		{"tree", nil},
		{"forest", []string{"-forest", "-trees", "5", "-seed", "3"}},
		{"boost", []string{"-boost", "-rounds", "4"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			jsonPath := filepath.Join(dir, tc.name+".json")
			binPath := filepath.Join(dir, tc.name+".udt")
			backPath := filepath.Join(dir, tc.name+"-back.json")
			args := append([]string{"-in", trainPath, "-out", jsonPath, "-minweight", "1"}, tc.extra...)
			if _, err := capture(t, func() error { return train(args) }); err != nil {
				t.Fatalf("train: %v", err)
			}

			// JSON -> binary (-to auto picks the opposite of the source).
			out, err := capture(t, func() error {
				return convert([]string{"-in", jsonPath, "-out", binPath})
			})
			if err != nil {
				t.Fatalf("convert to binary: %v", err)
			}
			if !strings.Contains(out, "(json)") || !strings.Contains(out, "(binary)") {
				t.Fatalf("convert output: %q", out)
			}
			// Binary -> JSON, explicitly.
			if _, err := capture(t, func() error {
				return convert([]string{"-in", binPath, "-out", backPath, "-to", "json"})
			}); err != nil {
				t.Fatalf("convert back to JSON: %v", err)
			}

			want, err := capture(t, func() error {
				return predict([]string{"-model", jsonPath, "-in", testPath, "-format", "ndjson"})
			})
			if err != nil {
				t.Fatalf("predict source: %v", err)
			}
			for _, path := range []string{binPath, backPath} {
				got, err := capture(t, func() error {
					return predict([]string{"-model", path, "-in", testPath, "-format", "ndjson"})
				})
				if err != nil {
					t.Fatalf("predict %s: %v", path, err)
				}
				if got != want {
					t.Fatalf("predictions from %s diverge:\n%s\nwant:\n%s", path, got, want)
				}
			}
		})
	}
}

// TestRulesFromBinaryModel: rule extraction decompiles a binary single-tree
// model and prints the same rules as the JSON source.
func TestRulesFromBinaryModel(t *testing.T) {
	trainPath, _, modelPath := writeFixtures(t)
	if _, err := capture(t, func() error {
		return train([]string{"-in", trainPath, "-out", modelPath, "-minweight", "1"})
	}); err != nil {
		t.Fatalf("train: %v", err)
	}
	binPath := filepath.Join(filepath.Dir(modelPath), "model.udt")
	if _, err := capture(t, func() error {
		return convert([]string{"-in", modelPath, "-out", binPath, "-to", "binary"})
	}); err != nil {
		t.Fatalf("convert: %v", err)
	}
	want, err := capture(t, func() error { return rules([]string{"-model", modelPath}) })
	if err != nil {
		t.Fatalf("rules on JSON: %v", err)
	}
	got, err := capture(t, func() error { return rules([]string{"-model", binPath}) })
	if err != nil {
		t.Fatalf("rules on binary: %v", err)
	}
	if got != want || !strings.Contains(got, "IF ") {
		t.Fatalf("binary rules:\n%s\nwant:\n%s", got, want)
	}
}

// TestConvertErrors: bad flags and sources fail cleanly.
func TestConvertErrors(t *testing.T) {
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(junk, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, args := range map[string][]string{
		"missing -in":    {"-out", filepath.Join(dir, "x")},
		"missing -out":   {"-in", junk},
		"unknown target": {"-in", junk, "-out", filepath.Join(dir, "x"), "-to", "xml"},
		"junk source":    {"-in", junk, "-out", filepath.Join(dir, "x")},
	} {
		if _, err := capture(t, func() error { return convert(args) }); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestPredictNDJSONGoldenBinary pins predict -format ndjson from a converted
// binary model to the shared golden stream: the CLI answers the exact same
// bytes whether it loads the JSON fixture or its binary container.
func TestPredictNDJSONGoldenBinary(t *testing.T) {
	fixtures := "../../testdata/stream"
	binPath := filepath.Join(t.TempDir(), "model.udt")
	if _, err := capture(t, func() error {
		return convert([]string{"-in", fixtures + "/model.json", "-out", binPath, "-to", "binary"})
	}); err != nil {
		t.Fatalf("convert: %v", err)
	}
	out, err := capture(t, func() error {
		return predict([]string{
			"-model", binPath,
			"-in", fixtures + "/input.csv",
			"-format", "ndjson",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(fixtures + "/golden.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Fatalf("binary-model predict -format ndjson diverges from the golden stream.\ngot:\n%swant:\n%s", out, golden)
	}
}
