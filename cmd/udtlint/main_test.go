package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunCleanOnRepo mirrors the CI gate: the full suite (custom analyzers
// plus the vet subset) over the whole module must exit 0.
func TestRunCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go vet over the whole module")
	}
	var out, errb strings.Builder
	if code := run([]string{"-dir", "../..", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.String() != "" {
		t.Errorf("unexpected findings:\n%s", out.String())
	}
}

// TestRunStrictAuditsSuppressions lists the blessed escape hatches without
// failing the run.
func TestRunStrictAuditsSuppressions(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-dir", "../..", "-strict", "-novet", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "suppressed by //udt:alloc-ok") {
		t.Errorf("strict mode did not list the audited outBuf suppressions:\n%s", out.String())
	}
}

// TestRunFailsOnSeededViolation drops an unsorted map range into a scratch
// module's forest package and asserts udtlint exits 1 with a diagnostic
// naming the file, line and invariant.
func TestRunFailsOnSeededViolation(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "forest", "bad.go"), `package forest

func flatten(votes map[string]float64) []float64 {
	var out []float64
	for _, v := range votes {
		out = append(out, v)
	}
	return out
}
`)
	var out, errb strings.Builder
	if code := run([]string{"-dir", dir, "-novet", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	got := out.String()
	for _, needle := range []string{"bad.go:5:", "[maprange]", "nondeterministic order", "byte-identical"} {
		if !strings.Contains(got, needle) {
			t.Errorf("diagnostic missing %q:\n%s", needle, got)
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
