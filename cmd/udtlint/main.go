// Command udtlint runs the repo's custom static-analysis suite
// (internal/lint) plus a curated subset of go vet over the packages matching
// the given patterns (default ./...). It exits nonzero when any unsuppressed
// finding remains, so CI can gate on it.
//
// Usage:
//
//	udtlint [-dir d] [-strict] [-novet] [patterns...]
//
// -strict additionally prints every finding silenced by a //udt:*-ok escape
// hatch, for auditing; suppressed findings never fail the run. -novet skips
// the go vet passes (useful in tests and tight edit loops — the custom
// analyzers carry the repo-specific invariants).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"

	"udt/internal/cliutil"
	"udt/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("udtlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "directory to resolve package patterns in")
	strict := fs.Bool("strict", false, "also print findings silenced by //udt:*-ok directives")
	novet := fs.Bool("novet", false, "skip the go vet passes")
	version := fs.Bool("version", false, "print build info and exit")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, cliutil.VersionString("udtlint"))
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "udtlint: %v\n", err)
		return 2
	}

	failed := false
	suppressed := 0
	for _, d := range lint.RunAnalyzers(pkgs, lint.Analyzers) {
		if d.Suppressed {
			suppressed++
			if *strict {
				fmt.Fprintln(stdout, d)
			}
			continue
		}
		failed = true
		fmt.Fprintln(stdout, d)
	}
	if *strict && suppressed == 0 {
		fmt.Fprintln(stdout, "udtlint: no suppressed findings")
	}

	// The curated vet subset: passes whose findings would break the same
	// invariants the custom analyzers guard (atomic misuse, copied locks,
	// unsafe pointer conversions). Passing explicit flags makes vet run only
	// these.
	if !*novet {
		cmd := exec.Command("go", append([]string{"vet", "-atomic", "-copylocks", "-unsafeptr"}, patterns...)...)
		cmd.Dir = *dir
		cmd.Stdout = stderr
		cmd.Stderr = stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(stderr, "udtlint: go vet: %v\n", err)
			failed = true
		}
	}

	if failed {
		return 1
	}
	return 0
}
