// Command udtload drives a running udtserve with an open-loop traffic
// pattern and reports client-side latency percentiles, error counts, and the
// server's own /metrics deltas as a machine-readable JSON report. Arrivals
// fire on a fixed schedule at the target QPS whether or not earlier requests
// have completed, so server slowdown shows up as latency and drops instead
// of silently throttling the offered load.
//
// Usage:
//
//	udtload -target http://127.0.0.1:8080 -data test.csv -qps 200 -duration 10s
//	udtload -target ... -data ... -mix single=0.6,batch=0.3,stream=0.1 -out bench.json
//	udtload -target http://replica1:8080,http://replica2:8080 -data ... \
//	        -models alpha=0.7,beta=0.3
//
// -target accepts several comma-separated base URLs; arrivals fan out
// round-robin across them (replicas, or a udtproxy in front of replicas —
// either way the offered load is one schedule). The first URL is also the
// /metrics source for the report's server-delta section.
//
// -models weights a per-model mix: each request draws a model name and hits
// /v1/models/{name}/classify[/stream] instead of the legacy routes, and the
// report carries "model:{name}" latency summaries. Without -models the
// request sequence for a given seed is identical to earlier releases.
//
// Payloads are sampled (deterministically, per -seed) from the rows of the
// CSV: the same seed against the same CSV issues the identical request
// sequence, so two reports with equal seeds are directly comparable. The
// report's schemaVersion field ties it to internal/loadgen.DecodeReport,
// which CI uses to track the serving-path perf trajectory PR over PR.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"udt/internal/cliutil"
	"udt/internal/loadgen"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "udtload:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("udtload", flag.ContinueOnError)
	var (
		target      = fs.String("target", "", "base URL(s) of udtserve/udtproxy instances, comma-separated (required)")
		modelsSpec  = fs.String("models", "", "per-model mix, name=weight comma-separated (empty = legacy single-model routes)")
		dataPath    = fs.String("data", "", "CSV file to sample request payloads from (required)")
		qps         = fs.Float64("qps", 100, "target offered load, arrivals per second")
		duration    = fs.Duration("duration", 10*time.Second, "run length")
		seed        = fs.Int64("seed", 1, "payload sampling seed")
		mixSpec     = fs.String("mix", "single=0.7,batch=0.2,stream=0.1", "request-class weights, class=weight comma-separated")
		batchSize   = fs.Int("batch", 16, "tuples per batch request")
		streamLines = fs.Int("stream-lines", 32, "NDJSON lines per stream request")
		maxInFlight = fs.Int("max-inflight", 512, "outstanding-request cap; arrivals beyond it are dropped")
		timeout     = fs.Duration("timeout", 5*time.Second, "per-request timeout")
		outPath     = fs.String("out", "", "write the JSON report here (default stdout, suppressing the summary)")
		version     = fs.Bool("version", false, "print build info and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, cliutil.VersionString("udtload"))
		return nil
	}
	if *target == "" {
		return fmt.Errorf("-target is required")
	}
	if *dataPath == "" {
		return fmt.Errorf("-data is required")
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}
	models, err := parseModels(*modelsSpec)
	if err != nil {
		return err
	}
	targets := []string{}
	for _, tgt := range strings.Split(*target, ",") {
		tgt = strings.TrimRight(strings.TrimSpace(tgt), "/")
		if tgt != "" {
			targets = append(targets, tgt)
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("-target %q names no URL", *target)
	}

	f, err := os.Open(*dataPath)
	if err != nil {
		return err
	}
	payloads, perr := loadgen.PayloadsFromCSV(f, *dataPath)
	f.Close()
	if perr != nil {
		return perr
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	defer stop()
	cfg := loadgen.Config{
		BaseURL:     targets[0],
		QPS:         *qps,
		Duration:    *duration,
		Seed:        *seed,
		Mix:         mix,
		Models:      models,
		BatchSize:   *batchSize,
		StreamLines: *streamLines,
		MaxInFlight: *maxInFlight,
		Timeout:     *timeout,
	}
	if len(targets) > 1 {
		cfg.Targets = targets
	}
	rep, err := loadgen.Run(ctx, cfg, payloads)
	if err != nil {
		return err
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *outPath == "" {
		_, err := stdout.Write(blob)
		return err
	}
	if err := os.WriteFile(*outPath, blob, 0o644); err != nil {
		return err
	}
	printSummary(stdout, rep, *outPath)
	return nil
}

// parseMix parses "single=0.7,batch=0.2,stream=0.1"; omitted classes get
// weight zero.
func parseMix(spec string) (loadgen.Mix, error) {
	var mix loadgen.Mix
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return mix, fmt.Errorf("-mix entry %q is not class=weight", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w < 0 {
			return mix, fmt.Errorf("-mix entry %q has a bad weight", part)
		}
		switch name {
		case "single":
			mix.Single = w
		case "batch":
			mix.Batch = w
		case "stream":
			mix.Stream = w
		default:
			return mix, fmt.Errorf("-mix class %q is not single|batch|stream", name)
		}
	}
	if mix.Single+mix.Batch+mix.Stream <= 0 {
		return mix, fmt.Errorf("-mix %q enables no request class", spec)
	}
	return mix, nil
}

// parseModels parses "-models alpha=0.7,beta=0.3" into per-model weights;
// an empty spec means the legacy single-model routes.
func parseModels(spec string) (map[string]float64, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	models := map[string]float64{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-models entry %q is not name=weight", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("-models entry %q has a bad weight", part)
		}
		if _, dup := models[name]; dup {
			return nil, fmt.Errorf("-models names %q twice", name)
		}
		models[name] = w
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("-models %q names no model", spec)
	}
	return models, nil
}

// printSummary renders the human digest that accompanies a file report.
func printSummary(w io.Writer, rep *loadgen.Report, outPath string) {
	c := rep.Requests
	fmt.Fprintf(w, "sent %d (ok %d, errors %d, rejected %d, dropped %d)  offered %.0f qps, achieved %.1f qps\n",
		c.Sent, c.OK, c.Errors, c.Rejected, c.Dropped, rep.OfferedQPS, rep.AchievedQPS)
	if all := rep.Latency["all"]; all != nil && all.Count > 0 {
		fmt.Fprintf(w, "latency p50 %dµs  p95 %dµs  p99 %dµs  max %dµs\n",
			all.P50Micros, all.P95Micros, all.P99Micros, all.MaxMicros)
	}
	if srv := rep.Server; srv != nil {
		fmt.Fprintf(w, "server classified %d tuples", srv.TuplesClassified)
		if ee := srv.EarlyExit; ee != nil && ee.Predictions > 0 {
			fmt.Fprintf(w, "; early exit evaluated %.2f members/prediction",
				float64(ee.MembersEvaluated)/float64(ee.Predictions))
		}
		fmt.Fprintln(w)
	}
	if rt := rep.ServerRuntime; rt != nil {
		fmt.Fprintf(w, "server runtime: heap %+.1f MiB, goroutines %+d, %d GC cycles (%dµs paused)\n",
			float64(rt.HeapAllocBytesDelta)/(1<<20), rt.GoroutinesDelta, rt.GCCycles, rt.GCPauseTotalMicros)
	}
	if cc := rep.CrossCheck; cc != nil {
		agree := "agree"
		if !cc.WithinOneBucket {
			agree = "DISAGREE"
		}
		fmt.Fprintf(w, "client p95 %dµs vs server p95 bucket (%d, %d]µs: %s (%d buckets apart)\n",
			cc.ClientP95Micros, cc.ServerP95LoMicros, cc.ServerP95HiMicros, agree, cc.BucketDistance)
	}
	fmt.Fprintf(w, "report written to %s\n", outPath)
}
