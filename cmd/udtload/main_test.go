package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"udt/internal/loadgen"
)

const testCSV = `x,y,class
0.2,1@0.5;2@0.3;3@0.2,lo
9.2,12;13;14,hi
4.5,2@0.25;3@0.5;4@0.25,lo
`

// stubHandler fakes just enough of udtserve for the CLI to run: classify
// endpoints that always succeed and a /metrics document with a tuple
// counter.
func stubHandler() http.Handler {
	mux := http.NewServeMux()
	classified := 0
	mux.HandleFunc("POST /classify", func(w http.ResponseWriter, r *http.Request) {
		classified++
		w.Write([]byte(`{"class":"lo"}`))
	})
	mux.HandleFunc("POST /classify/stream", func(w http.ResponseWriter, r *http.Request) {
		classified++
		w.Write([]byte(`{"line":1,"class":"lo"}` + "\n"))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"tuplesClassified": classified})
	})
	return mux
}

func writeCSV(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(testCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunWritesReport: -out must produce a report DecodeReport accepts plus
// a human summary on stdout.
func TestRunWritesReport(t *testing.T) {
	ts := httptest.NewServer(stubHandler())
	defer ts.Close()
	outPath := filepath.Join(t.TempDir(), "bench.json")
	var stdout bytes.Buffer
	err := run(context.Background(), []string{
		"-target", ts.URL, "-data", writeCSV(t),
		"-qps", "300", "-duration", "200ms", "-seed", "7",
		"-mix", "single=0.6,batch=0.3,stream=0.1", "-batch", "4", "-stream-lines", "3",
		"-out", outPath,
	}, &stdout)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.DecodeReport(blob)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests.OK == 0 || rep.Requests.Errors != 0 {
		t.Fatalf("requests = %+v", rep.Requests)
	}
	if rep.Config.Seed != 7 || rep.Config.BatchSize != 4 {
		t.Fatalf("config = %+v", rep.Config)
	}
	out := stdout.String()
	for _, want := range []string{"sent ", "latency p50", "report written to " + outPath} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary %q lacks %q", out, want)
		}
	}
}

// TestRunStdoutReport: without -out the JSON report itself is the stdout
// payload (pipe-friendly), with no summary mixed in.
func TestRunStdoutReport(t *testing.T) {
	ts := httptest.NewServer(stubHandler())
	defer ts.Close()
	var stdout bytes.Buffer
	err := run(context.Background(), []string{
		"-target", ts.URL, "-data", writeCSV(t),
		"-qps", "200", "-duration", "100ms", "-mix", "single=1",
	}, &stdout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loadgen.DecodeReport(stdout.Bytes()); err != nil {
		t.Fatalf("stdout is not a report: %v\n%s", err, stdout.String())
	}
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("single=0.5,stream=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if mix != (loadgen.Mix{Single: 0.5, Stream: 0.5}) {
		t.Fatalf("mix = %+v", mix)
	}
	for _, bad := range []string{"", "single", "single=x", "single=-1", "oneshot=1", "single=0,batch=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q): no error", bad)
		}
	}
}

// TestRunFlagErrors: missing required flags and unreadable data must fail
// before any traffic is sent.
func TestRunFlagErrors(t *testing.T) {
	ctx := context.Background()
	var sink bytes.Buffer
	for name, args := range map[string][]string{
		"no target": {"-data", "x.csv"},
		"no data":   {"-target", "http://127.0.0.1:1"},
		"bad mix":   {"-target", "http://127.0.0.1:1", "-data", "x.csv", "-mix", "nope=1"},
	} {
		if err := run(ctx, args, &sink); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	if err := run(ctx, []string{"-target", "http://127.0.0.1:1", "-data", filepath.Join(t.TempDir(), "missing.csv")}, &sink); err == nil {
		t.Error("missing CSV: no error")
	}
}

// TestParseModels: the -models flag grammar.
func TestParseModels(t *testing.T) {
	m, err := parseModels("alpha=0.7, beta=0.3")
	if err != nil || m["alpha"] != 0.7 || m["beta"] != 0.3 {
		t.Fatalf("parseModels = %v, %v", m, err)
	}
	if m, err := parseModels(""); err != nil || m != nil {
		t.Fatalf("empty spec = %v, %v", m, err)
	}
	for _, bad := range []string{"alpha", "=1", "alpha=x", "alpha=-1", "alpha=1,alpha=2", ","} {
		if _, err := parseModels(bad); err == nil {
			t.Errorf("parseModels(%q): no error", bad)
		}
	}
}

// TestTargetListValidation: a -target of only separators is refused.
func TestTargetListValidation(t *testing.T) {
	err := run(context.Background(), []string{"-target", ",,", "-data", "x.csv"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-target") {
		t.Fatalf("blank target list: %v", err)
	}
}
