package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"udt/internal/loadgen"
)

// TestLoadSmoke runs the udtload traffic generator against an in-process
// early-exit udtserve and checks the whole measurement chain: payloads from
// a CSV, open-loop arrivals, zero failures, server-side early-exit deltas,
// and the client/server latency cross-check. CI sets UDT_BENCH_OUT to check
// the JSON report in as the repo's perf trajectory (BENCH_7.json); locally
// the report lands in a temp dir.
//
// Before generating load it proves the early-exit server is not trading
// correctness for speed: every payload must classify identically on a full
// and an early-exit server over the same model.
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke is not a -short test")
	}
	dir := t.TempDir()
	modelPath := trainBoostedModel(t, dir)
	full, err := newServer(modelPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	early, err := newServerMode(modelPath, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	tsFull := httptest.NewServer(full.handler())
	defer tsFull.Close()
	tsEarly := httptest.NewServer(early.handler())
	defer tsEarly.Close()

	csvPath := filepath.Join(dir, "load.csv")
	writeLoadCSV(t, csvPath)
	f, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	payloads, err := loadgen.PayloadsFromCSV(f, csvPath)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Correctness gate: early exit must agree with full evaluation on every
	// payload the load run will sample from.
	for i, doc := range payloads.Docs {
		if fc, ec := classifyOne(t, tsFull.URL, doc), classifyOne(t, tsEarly.URL, doc); fc != ec {
			t.Fatalf("payload %d: full evaluation %q, early exit %q", i, fc, ec)
		}
	}

	// The mix is batch-heavy with fat batches so the /classify p95 sits in
	// the batch regime, where handler work (decode + classify + encode of 64
	// tuples) dominates the fixed per-request client overhead — the regime
	// where client- and server-observed percentiles can meaningfully agree.
	// The cross-check is the one assertion that depends on wall-clock
	// behaviour outside the server (client-side scheduling), so a transient
	// divergence under a loaded test machine gets one fresh run before the
	// test fails; a systematic divergence fails both.
	var rep *loadgen.Report
	var ee *loadgen.EarlyExitDelta
	for attempt := 0; ; attempt++ {
		var err error
		rep, err = loadgen.Run(context.Background(), loadgen.Config{
			BaseURL:     tsEarly.URL,
			QPS:         200,
			Duration:    2 * time.Second,
			Seed:        7,
			Mix:         loadgen.Mix{Single: 0.25, Batch: 0.55, Stream: 0.2},
			BatchSize:   64,
			StreamLines: 16,
			Client:      tsEarly.Client(),
		}, payloads)
		if err != nil {
			t.Fatal(err)
		}
		c := rep.Requests
		if c.OK == 0 {
			t.Fatalf("no successful requests: %+v", c)
		}
		if c.Errors != 0 || c.Rejected != 0 || c.Dropped != 0 {
			t.Fatalf("in-process smoke saw failures: %+v", c)
		}
		if rep.Latency["all"].Count != c.OK {
			t.Fatalf("latency[all] covers %d requests, ok = %d", rep.Latency["all"].Count, c.OK)
		}
		srv := rep.Server
		if srv == nil || srv.TuplesClassified == 0 {
			t.Fatalf("server delta = %+v", srv)
		}
		ee = srv.EarlyExit
		if ee == nil || ee.Predictions == 0 {
			t.Fatalf("early-exit delta = %+v", ee)
		}
		if ee.MembersEvaluated < ee.Predictions {
			t.Fatalf("early exit evaluated %d members over %d predictions", ee.MembersEvaluated, ee.Predictions)
		}
		if rep.CrossCheck == nil {
			t.Fatal("no client/server latency cross-check")
		}
		if rep.CrossCheck.WithinOneBucket {
			break
		}
		msg := fmt.Sprintf("client p95 %dµs and server p95 (%d, %d]µs landed %d buckets apart",
			rep.CrossCheck.ClientP95Micros, rep.CrossCheck.ServerP95LoMicros,
			rep.CrossCheck.ServerP95HiMicros, rep.CrossCheck.BucketDistance)
		if attempt > 0 {
			t.Fatal(msg)
		}
		t.Logf("%s; retrying once (contended test machine?)", msg)
	}
	c := rep.Requests

	outPath := os.Getenv("UDT_BENCH_OUT")
	if outPath == "" {
		outPath = filepath.Join(dir, "BENCH_7.json")
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadgen.DecodeReport(append(blob, '\n')); err != nil {
		t.Fatalf("written report does not decode: %v", err)
	}
	t.Logf("report: ok=%d p50=%dµs p95=%dµs members/prediction=%.2f → %s",
		c.OK, rep.Latency["all"].P50Micros, rep.Latency["all"].P95Micros,
		float64(ee.MembersEvaluated)/float64(ee.Predictions), outPath)
}

// classifyOne posts a single wire tuple and returns the predicted class.
func classifyOne(t *testing.T, baseURL string, doc []byte) string {
	t.Helper()
	res := postJSON(t, baseURL+"/classify", string(doc))
	var out struct {
		Class string `json:"class"`
	}
	decodeBody(t, res, http.StatusOK, &out)
	return out.Class
}

// writeLoadCSV emits payload rows over the boosted test model's schema (two
// numeric attributes): point values and sampled pdfs spread across both
// class regions so the load run exercises varied descent paths.
func writeLoadCSV(t *testing.T, path string) {
	t.Helper()
	const rows = `x,y,class
0.2,1@0.5;2@0.3;3@0.2,lo
0.5,2;3;4,lo
1.1,1@0.9;5@0.1,lo
9.2,12;13;14,hi
8.4,11@0.25;12@0.5;13@0.25,hi
10.0,14,hi
`
	if err := os.WriteFile(path, []byte(rows), 0o644); err != nil {
		t.Fatal(err)
	}
}
