package main

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"udt/internal/obs"
	"udt/internal/registry"
)

// epSnap mirrors the obs.EndpointMetrics JSON snapshot.
type epSnap struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
}

// metricsModels is the /metrics JSON slice this file cares about.
type metricsModels struct {
	Registry struct {
		Models  int    `json:"models"`
		Default string `json:"default"`
	} `json:"registry"`
	Models map[string]struct {
		Generation     int64  `json:"generation"`
		Tuples         int64  `json:"tuples"`
		Classify       epSnap `json:"classify"`
		ClassifyStream epSnap `json:"classifyStream"`
		Shadow         *struct {
			Path             string `json:"path"`
			Comparisons      int64  `json:"comparisons"`
			ArgmaxDivergence int64  `json:"argmaxDivergence"`
			DistDivergence   int64  `json:"distDivergence"`
		} `json:"shadow"`
	} `json:"models"`
	Endpoints map[string]epSnap `json:"endpoints"`
}

func scrapeModels(t *testing.T, url string) metricsModels {
	t.Helper()
	res, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var js metricsModels
	decodeBody(t, res, http.StatusOK, &js)
	return js
}

// newRegistryServer builds a server over a temp dir holding the named model
// copies ("alpha" a tree, "beta" a forest).
func newRegistryServer(t *testing.T) *server {
	t.Helper()
	dir := t.TempDir()
	copyFile(t, trainModel(t), filepath.Join(dir, "alpha.json"))
	copyFile(t, trainForestModel(t, t.TempDir(), 3), filepath.Join(dir, "beta.json"))
	s, err := newServerOpts(registry.Options{Path: dir}, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRegistryRoutesAndMetricsIsolation drives two models through their
// /v1/models/{name}/ routes and proves the per-model counters move
// independently: model-A traffic must never show up under model B, in either
// the JSON or the Prometheus view.
func TestRegistryRoutesAndMetricsIsolation(t *testing.T) {
	s := newRegistryServer(t)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Two models, neither named "default": the legacy classify route must
	// refuse rather than guess which model the caller meant.
	res := postJSON(t, ts.URL+"/classify", `{"num": [0.2, [1, 2, 3]]}`)
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("legacy /classify with no default = %d, want 404", res.StatusCode)
	}
	// Legacy healthz stays alive (liveness must not depend on a default).
	var health struct {
		Status string   `json:"status"`
		Models []string `json:"models"`
	}
	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, hres, http.StatusOK, &health)
	if health.Status != "ok" || len(health.Models) != 2 {
		t.Fatalf("no-default healthz = %+v", health)
	}

	// alpha: two classifies and one stream line; beta: one good classify and
	// one malformed body (a per-model error).
	for i := 0; i < 2; i++ {
		var out struct {
			Class string `json:"class"`
		}
		decodeBody(t, postJSON(t, ts.URL+"/v1/models/alpha/classify", `{"num": [0.2, [1, 2, 3]]}`), http.StatusOK, &out)
		if out.Class != "lo" {
			t.Fatalf("alpha classify = %+v", out)
		}
	}
	sres, err := http.Post(ts.URL+"/v1/models/alpha/classify/stream", ndjsonType,
		strings.NewReader(`{"num": [9.2, [12, 13, 14]]}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(sres.Body).ReadString('\n')
	sres.Body.Close()
	if err != nil || !strings.Contains(line, `"hi"`) {
		t.Fatalf("alpha stream line = %q, %v", line, err)
	}
	var out struct {
		Class string `json:"class"`
	}
	decodeBody(t, postJSON(t, ts.URL+"/v1/models/beta/classify", `{"num": [9.2, [12, 13, 14]]}`), http.StatusOK, &out)
	if out.Class != "hi" {
		t.Fatalf("beta classify = %+v", out)
	}
	bres := postJSON(t, ts.URL+"/v1/models/beta/classify", `{"nope": 1}`)
	io.Copy(io.Discard, bres.Body)
	bres.Body.Close()
	if bres.StatusCode != http.StatusBadRequest {
		t.Fatalf("beta malformed classify = %d, want 400", bres.StatusCode)
	}
	// Unknown model: 404 on the endpoint dimension only.
	ures := postJSON(t, ts.URL+"/v1/models/nosuch/classify", `{"num": [0.2, [1, 2, 3]]}`)
	io.Copy(io.Discard, ures.Body)
	ures.Body.Close()
	if ures.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model = %d, want 404", ures.StatusCode)
	}

	js := scrapeModels(t, ts.URL)
	if js.Registry.Models != 2 || js.Registry.Default != "" {
		t.Fatalf("registry doc = %+v", js.Registry)
	}
	a, b := js.Models["alpha"], js.Models["beta"]
	if a.Classify != (epSnap{Requests: 2}) || a.ClassifyStream != (epSnap{Requests: 1}) || a.Tuples != 3 {
		t.Fatalf("alpha counters = classify %+v stream %+v tuples %d", a.Classify, a.ClassifyStream, a.Tuples)
	}
	if b.Classify != (epSnap{Requests: 2, Errors: 1}) || b.ClassifyStream != (epSnap{}) || b.Tuples != 1 {
		t.Fatalf("beta counters = classify %+v stream %+v tuples %d", b.Classify, b.ClassifyStream, b.Tuples)
	}
	// Endpoint dimension: the unknown-model 404 lands here (5 = 2 alpha + 2
	// beta + 1 nosuch) and nowhere in any model's counters.
	if js.Endpoints["modelClassify"] != (epSnap{Requests: 5, Errors: 2}) {
		t.Fatalf("modelClassify endpoint = %+v", js.Endpoints["modelClassify"])
	}
	// Legacy endpoints saw the no-default refusal only.
	if js.Endpoints["classify"] != (epSnap{Requests: 1, Errors: 1}) {
		t.Fatalf("legacy classify endpoint = %+v", js.Endpoints["classify"])
	}

	// The same isolation in the Prometheus exposition.
	pres, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(pres.Body)
	pres.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	e, err := obs.ParseText(blob)
	if err != nil {
		t.Fatal(err)
	}
	want := func(name string, v float64, labels ...obs.Label) {
		t.Helper()
		got, ok := e.Value(name, labels...)
		if !ok || got != v {
			t.Fatalf("%s%v = %v, %v; want %v", name, labels, got, ok, v)
		}
	}
	mlabel := func(m string) obs.Label { return obs.Label{Key: "model", Value: m} }
	eplabel := func(ep string) obs.Label { return obs.Label{Key: "endpoint", Value: ep} }
	want("udt_registry_models", 2)
	want("udt_model_requests_total", 2, mlabel("alpha"), eplabel("classify"))
	want("udt_model_requests_total", 1, mlabel("alpha"), eplabel("classifyStream"))
	want("udt_model_requests_total", 2, mlabel("beta"), eplabel("classify"))
	want("udt_model_requests_total", 0, mlabel("beta"), eplabel("classifyStream"))
	want("udt_model_request_errors_total", 0, mlabel("alpha"), eplabel("classify"))
	want("udt_model_request_errors_total", 1, mlabel("beta"), eplabel("classify"))
	want("udt_model_tuples_total", 3, mlabel("alpha"))
	want("udt_model_tuples_total", 1, mlabel("beta"))
	want("udt_registry_generation", 1, mlabel("alpha"))
	want("udt_registry_generation", 1, mlabel("beta"))
}

// TestRegistryReloadAndEvict exercises the per-model reload and DELETE
// routes: a reload bumps only that model's generation; an evicted model
// vanishes from routing and from /metrics while the other keeps serving.
func TestRegistryReloadAndEvict(t *testing.T) {
	s := newRegistryServer(t)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	var rl struct {
		Status     string `json:"status"`
		Name       string `json:"name"`
		Generation int64  `json:"generation"`
	}
	decodeBody(t, postJSON(t, ts.URL+"/v1/models/beta/reload", `{}`), http.StatusOK, &rl)
	if rl.Status != "reloaded" || rl.Name != "beta" || rl.Generation != 2 {
		t.Fatalf("beta reload = %+v", rl)
	}
	js := scrapeModels(t, ts.URL)
	if js.Models["alpha"].Generation != 1 || js.Models["beta"].Generation != 2 {
		t.Fatalf("generations after beta reload = alpha %d beta %d",
			js.Models["alpha"].Generation, js.Models["beta"].Generation)
	}

	// Named healthz reports the entry, not the default.
	var health struct {
		Name       string `json:"name"`
		Generation int64  `json:"generation"`
	}
	hres, err := http.Get(ts.URL + "/v1/models/beta/healthz")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, hres, http.StatusOK, &health)
	if health.Name != "beta" || health.Generation != 2 {
		t.Fatalf("beta healthz = %+v", health)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/beta", nil)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var ev struct {
		Status string `json:"status"`
		Name   string `json:"name"`
	}
	decodeBody(t, dres, http.StatusOK, &ev)
	if ev.Status != "evicted" || ev.Name != "beta" {
		t.Fatalf("evict = %+v", ev)
	}
	gone := postJSON(t, ts.URL+"/v1/models/beta/classify", `{"num": [9.2, [12, 13, 14]]}`)
	io.Copy(io.Discard, gone.Body)
	gone.Body.Close()
	if gone.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted model classify = %d, want 404", gone.StatusCode)
	}
	js = scrapeModels(t, ts.URL)
	if js.Registry.Models != 1 {
		t.Fatalf("registry.models after evict = %d", js.Registry.Models)
	}
	if _, ok := js.Models["beta"]; ok {
		t.Fatal("evicted model still reported in /metrics")
	}
	var out struct {
		Class string `json:"class"`
	}
	decodeBody(t, postJSON(t, ts.URL+"/v1/models/alpha/classify", `{"num": [0.2, [1, 2, 3]]}`), http.StatusOK, &out)
	if out.Class != "lo" {
		t.Fatalf("alpha after beta evict = %+v", out)
	}
}

// TestRegistryDirDefaultEntry: a directory entry literally named "default"
// backs the legacy routes, and legacy traffic lands in its per-model
// counters.
func TestRegistryDirDefaultEntry(t *testing.T) {
	dir := t.TempDir()
	copyFile(t, trainModel(t), filepath.Join(dir, "default.json"))
	copyFile(t, trainForestModel(t, t.TempDir(), 3), filepath.Join(dir, "other.json"))
	s, err := newServerOpts(registry.Options{Path: dir}, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	var out struct {
		Class string `json:"class"`
	}
	decodeBody(t, postJSON(t, ts.URL+"/classify", `{"num": [0.2, [1, 2, 3]]}`), http.StatusOK, &out)
	if out.Class != "lo" {
		t.Fatalf("legacy classify via default entry = %+v", out)
	}
	js := scrapeModels(t, ts.URL)
	if js.Registry.Default != "default" {
		t.Fatalf("registry.default = %q", js.Registry.Default)
	}
	if js.Models["default"].Classify != (epSnap{Requests: 1}) || js.Models["other"].Classify != (epSnap{}) {
		t.Fatalf("legacy traffic accounting = default %+v other %+v",
			js.Models["default"].Classify, js.Models["other"].Classify)
	}
}

// TestShadowServing: -model plus -shadow mirrors classify traffic to the
// candidate generation and reports comparison counters; identical models
// never diverge.
func TestShadowServing(t *testing.T) {
	modelPath := trainModel(t)
	shadowPath := filepath.Join(t.TempDir(), "candidate.json")
	copyFile(t, modelPath, shadowPath)
	s, err := newServerOpts(registry.Options{Path: modelPath, Shadow: shadowPath}, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	res := postJSON(t, ts.URL+"/classify", `{"tuples": [
		{"num": [0.2, [1, 2, 3]]},
		{"num": [9.2, [12, 13, 14]]},
		{"num": [0.3, [2, 3, 4]]}
	]}`)
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("classify with shadow = %d", res.StatusCode)
	}
	sres, err := http.Post(ts.URL+"/classify/stream", ndjsonType,
		strings.NewReader(`{"num": [0.2, [1, 2, 3]]}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, sres.Body)
	sres.Body.Close()

	js := scrapeModels(t, ts.URL)
	sh := js.Models["default"].Shadow
	if sh == nil {
		t.Fatal("no shadow section in /metrics")
	}
	if sh.Path != shadowPath || sh.Comparisons != 4 || sh.ArgmaxDivergence != 0 || sh.DistDivergence != 0 {
		t.Fatalf("shadow counters = %+v", sh)
	}
}

// TestPerModelStreamBudget: a manifest maxStreams budget refuses the second
// concurrent stream for that model with 503 while the global cap stays
// untouched.
func TestPerModelStreamBudget(t *testing.T) {
	dir := t.TempDir()
	copyFile(t, trainModel(t), filepath.Join(dir, "a.json"))
	manifest := filepath.Join(dir, "models.manifest.json")
	if err := os.WriteFile(manifest, []byte(
		`{"models": [{"name": "a", "path": "a.json", "maxStreams": 1, "default": true}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := newServerOpts(registry.Options{Path: manifest}, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Hold stream 1 open: send one line, read its answer, keep the body
	// pending so the per-model gauge stays at 1.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/models/a/classify/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ndjsonType)
	resc := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			errc <- err
			return
		}
		resc <- res
	}()
	if _, err := io.WriteString(pw, `{"num": [0.2, [1, 2, 3]]}`+"\n"); err != nil {
		t.Fatal(err)
	}
	var first *http.Response
	select {
	case first = <-resc:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("stream 1 never answered")
	}
	if _, err := bufio.NewReader(first.Body).ReadString('\n'); err != nil {
		t.Fatal(err)
	}

	// Stream 2 against the same model must be refused by the entry budget.
	res2, err := http.Post(ts.URL+"/v1/models/a/classify/stream", ndjsonType,
		strings.NewReader(`{"num": [0.2, [1, 2, 3]]}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res2.Body)
	res2.Body.Close()
	if res2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-budget stream = %d, want 503", res2.StatusCode)
	}
	if res2.Header.Get("Retry-After") == "" {
		t.Fatal("over-budget stream refusal missing Retry-After")
	}
	pw.Close()
	io.Copy(io.Discard, first.Body)
	first.Body.Close()

	if got := s.reg.Get("a").Metrics.StreamRejected.Load(); got != 1 {
		t.Fatalf("per-model streamRejected = %d", got)
	}
	if got := s.mtr.streamRejected.Load(); got != 0 {
		t.Fatalf("global streamRejected moved: %d", got)
	}
}
