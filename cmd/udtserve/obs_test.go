package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"udt/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestInstrumentRoutes pins the invariant behind the middleware refactor:
// every route — not just the ones the old hand-rolled instrument wrapper
// covered — gets identical request/error/latency accounting and Accept
// enforcement.
func TestInstrumentRoutes(t *testing.T) {
	s, err := newServer(trainModel(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	routes := []struct {
		name         string
		em           *obs.EndpointMetrics
		method, path string
		body         string
	}{
		{"classify", &s.mtr.classify, http.MethodPost, "/classify", `{"num": [0.2, [1, 2, 3]]}`},
		{"classifyStream", &s.mtr.stream, http.MethodPost, "/classify/stream", `{"num": [0.2, [1, 2, 3]]}` + "\n"},
		{"reload", &s.mtr.reload, http.MethodPost, "/reload", ""},
		{"healthz", &s.mtr.healthz, http.MethodGet, "/healthz", ""},
		{"metrics", &s.mtr.metricsEP, http.MethodGet, "/metrics", ""},
	}
	do := func(rt struct {
		name         string
		em           *obs.EndpointMetrics
		method, path string
		body         string
	}, accept string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(rt.method, ts.URL+rt.path, strings.NewReader(rt.body))
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		return res
	}

	for _, rt := range routes {
		if res := do(rt, ""); res.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, want 200", rt.name, res.StatusCode)
		}
		// No route serves text/csv; the shared middleware refuses it before
		// the handler runs and counts the refusal as an error.
		res := do(rt, "text/csv")
		if res.StatusCode != http.StatusNotAcceptable {
			t.Fatalf("%s with Accept text/csv: status %d, want 406", rt.name, res.StatusCode)
		}
		if res.Header.Get("X-Request-Id") == "" {
			t.Fatalf("%s: 406 response carries no X-Request-Id", rt.name)
		}
	}
	for _, rt := range routes {
		if got := rt.em.Requests.Load(); got != 2 {
			t.Errorf("%s: requests = %d, want 2", rt.name, got)
		}
		if got := rt.em.Errors.Load(); got != 1 {
			t.Errorf("%s: errors = %d, want 1", rt.name, got)
		}
		if got := rt.em.Hist.Snapshot().Total(); got != 2 {
			t.Errorf("%s: latency histogram holds %d events, want 2", rt.name, got)
		}
	}
}

// TestScrapeBothFormats: /metrics negotiates between the JSON document and
// the Prometheus text exposition, and the exposition survives the strict
// parser.
func TestScrapeBothFormats(t *testing.T) {
	s, err := newServer(trainModel(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	get := func(path, accept string) (*http.Response, []byte) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(res.Body)
		res.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return res, body
	}

	// Default and ?format=json are the JSON document.
	for _, path := range []string{"/metrics", "/metrics?format=json"} {
		res, body := get(path, "")
		if res.StatusCode != http.StatusOK || !strings.HasPrefix(res.Header.Get("Content-Type"), jsonType) {
			t.Fatalf("%s: status %d type %q", path, res.StatusCode, res.Header.Get("Content-Type"))
		}
		var doc map[string]any
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("%s: not JSON: %v", path, err)
		}
		for _, key := range []string{"tuplesClassified", "endpoints", "runtime", "build", "trace"} {
			if _, ok := doc[key]; !ok {
				t.Fatalf("%s: JSON document missing %q", path, key)
			}
		}
	}

	// ?format=prometheus and a text/plain-only Accept header get the text
	// exposition; both must parse strictly.
	for _, r := range []struct{ path, accept string }{
		{"/metrics?format=prometheus", ""},
		{"/metrics", "text/plain"},
	} {
		res, body := get(r.path, r.accept)
		if res.StatusCode != http.StatusOK || res.Header.Get("Content-Type") != obs.TextType {
			t.Fatalf("%s (Accept %q): status %d type %q", r.path, r.accept, res.StatusCode, res.Header.Get("Content-Type"))
		}
		e, err := obs.ParseText(body)
		if err != nil {
			t.Fatalf("%s: exposition rejected by parser: %v", r.path, err)
		}
		if _, ok := e.Families["udt_requests_total"]; !ok {
			t.Fatalf("%s: exposition lacks udt_requests_total", r.path)
		}
	}

	// A JSON-accepting client still gets JSON even though text is available.
	res, body := get("/metrics", "application/json")
	if !strings.HasPrefix(res.Header.Get("Content-Type"), jsonType) || !json.Valid(body) {
		t.Fatalf("Accept application/json: type %q", res.Header.Get("Content-Type"))
	}

	// Unknown formats are a client error, not a silent default.
	res, body = get("/metrics?format=xml", "")
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("format=xml: status %d, want 400 (body %s)", res.StatusCode, body)
	}
}

// TestMetricsPrometheusMatchesJSON: the two /metrics views are projections
// of the same counters and must agree value-for-value. The one systematic
// skew: endpoint accounting is recorded after the handler runs, so the
// Prometheus scrape (taken second) sees the JSON scrape as one extra
// /metrics request.
func TestMetricsPrometheusMatchesJSON(t *testing.T) {
	s, err := newServer(trainModel(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Traffic across endpoints: two classify batches, a stream, a reload, a
	// healthz, and one classify error.
	for _, body := range []string{
		`{"tuples": [{"num": [0.2, [1, 2, 3]]}, {"num": [9.2, [12, 13, 14]]}]}`,
		`{"num": [0.3, [1, 3, 5]]}`,
	} {
		res := postJSON(t, ts.URL+"/classify", body)
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
	}
	res := postJSON(t, ts.URL+"/classify", `{"bogus": true}`)
	res.Body.Close()
	res = postJSON(t, ts.URL+"/classify/stream", `{"num": [0.2, [1, 2, 3]]}`+"\n{bad\n")
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	res = postJSON(t, ts.URL+"/reload", "")
	res.Body.Close()
	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()

	var js struct {
		Generation       int64 `json:"generation"`
		TuplesClassified int64 `json:"tuplesClassified"`
		Stream           struct {
			Lines      int64 `json:"lines"`
			LineErrors int64 `json:"lineErrors"`
			Rejected   int64 `json:"rejected"`
			Active     int64 `json:"active"`
		} `json:"stream"`
		Watch struct {
			Reloads int64 `json:"reloads"`
			Errors  int64 `json:"errors"`
		} `json:"watch"`
		EarlyExit struct {
			Predictions      int64 `json:"predictions"`
			MembersEvaluated int64 `json:"membersEvaluated"`
		} `json:"earlyExit"`
		Trace struct {
			Sampled int64 `json:"sampled"`
		} `json:"trace"`
		Endpoints map[string]struct {
			Requests int64 `json:"requests"`
			Errors   int64 `json:"errors"`
		} `json:"endpoints"`
	}
	jres, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, jres, http.StatusOK, &js)

	pres, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(pres.Body)
	pres.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	e, perr := obs.ParseText(blob)
	if perr != nil {
		t.Fatalf("exposition rejected: %v", perr)
	}

	mustEqual := func(name string, want float64, labels ...obs.Label) {
		t.Helper()
		got, ok := e.Value(name, labels...)
		if !ok {
			t.Fatalf("exposition lacks %s%v", name, labels)
		}
		if got != want {
			t.Errorf("%s%v = %v, JSON says %v", name, labels, got, want)
		}
	}

	mustEqual("udt_model_generation", float64(js.Generation))
	mustEqual("udt_tuples_classified_total", float64(js.TuplesClassified))
	mustEqual("udt_stream_lines_total", float64(js.Stream.Lines))
	mustEqual("udt_stream_line_errors_total", float64(js.Stream.LineErrors))
	mustEqual("udt_streams_rejected_total", float64(js.Stream.Rejected))
	mustEqual("udt_streams_active", float64(js.Stream.Active))
	mustEqual("udt_watch_reloads_total", float64(js.Watch.Reloads))
	mustEqual("udt_watch_errors_total", float64(js.Watch.Errors))
	mustEqual("udt_early_exit_predictions_total", float64(js.EarlyExit.Predictions))
	mustEqual("udt_early_exit_members_total", float64(js.EarlyExit.MembersEvaluated))
	mustEqual("udt_trace_sampled_total", float64(js.Trace.Sampled))

	if len(js.Endpoints) != 10 {
		t.Fatalf("JSON endpoints = %v", js.Endpoints)
	}
	for name, ep := range js.Endpoints {
		wantReq, wantErr := float64(ep.Requests), float64(ep.Errors)
		if name == "metrics" {
			wantReq++ // the JSON scrape itself, counted after its handler ran
		}
		label := obs.Label{Key: "endpoint", Value: name}
		mustEqual("udt_requests_total", wantReq, label)
		mustEqual("udt_request_errors_total", wantErr, label)
		mustEqual("udt_request_latency_seconds_count", wantReq, label)
	}
	if v, ok := e.Value("udt_batch_size_sum"); !ok || v != 3 {
		t.Fatalf("udt_batch_size_sum = %v, %v; want 3 (a 2-batch and a single)", v, ok)
	}
	if v, ok := e.Value("udt_batch_size_count"); !ok || v != 2 {
		t.Fatalf("udt_batch_size_count = %v, %v; want 2 classify calls", v, ok)
	}
}

// familySignature renders one family as "name type sig,sig,..." where each
// sig is a series' label shape. Routing labels (endpoint, span) are pinned
// by value — they are dashboard API; build-dependent label values are pinned
// by key only.
func familySignature(f obs.Family) string {
	sig := func(labels []obs.Label) string {
		if len(labels) == 0 {
			return "()"
		}
		parts := make([]string, 0, len(labels))
		for _, l := range labels {
			switch l.Key {
			case "endpoint", "span":
				parts = append(parts, l.Key+"="+l.Value)
			default:
				parts = append(parts, l.Key)
			}
		}
		sort.Strings(parts)
		return "(" + strings.Join(parts, ",") + ")"
	}
	var sigs []string
	for _, s := range f.Samples {
		sigs = append(sigs, sig(s.Labels))
	}
	for _, h := range f.Hists {
		sigs = append(sigs, sig(h.Labels))
	}
	sort.Strings(sigs)
	return fmt.Sprintf("%s %s %s", f.Name, f.Type, strings.Join(sigs, " "))
}

// TestPromFamiliesGolden pins every exposition series name and label set.
// A diff here is a breaking change for scrape configs and dashboards — if
// intended, regenerate with: go test ./cmd/udtserve -run Golden -update-golden
func TestPromFamiliesGolden(t *testing.T) {
	s, err := newServer(trainModel(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, f := range s.promFamilies() {
		lines = append(lines, familySignature(f))
	}
	got := strings.Join(lines, "\n") + "\n"

	golden := filepath.Join("testdata", "prom_families.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("prometheus family signatures changed (run with -update-golden if intended):\ngot:\n%swant:\n%s", got, want)
	}
}

// syncBuffer lets the test read the access log the server goroutine writes.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestTraceSpansWithinLatency: a sampled request's decode/classify/encode
// spans are disjoint sub-intervals of the handler, so their sum can never
// exceed the recorded endpoint latency; in early-exit mode the trace also
// carries the members-evaluated count.
func TestTraceSpansWithinLatency(t *testing.T) {
	s, err := newServerMode(trainForestModel(t, t.TempDir(), 5), 2, true)
	if err != nil {
		t.Fatal(err)
	}
	var logBuf syncBuffer
	s.mw.SampleEvery = 1
	s.mw.Log = slog.New(slog.NewJSONHandler(&logBuf, nil))
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	res := postJSON(t, ts.URL+"/classify", `{"tuples": [
		{"num": [0.2, [1, 2, 3]]},
		{"num": [9.2, [12, 13, 14]]}
	]}`)
	io.Copy(io.Discard, res.Body)
	res.Body.Close()

	// The access log is emitted after the response completes; wait for the
	// line rather than racing it.
	deadline := time.Now().Add(2 * time.Second)
	var raw string
	for {
		if raw = logBuf.String(); strings.Contains(raw, "\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no access log line within 2s")
		}
		time.Sleep(5 * time.Millisecond)
	}

	var line struct {
		Endpoint       string `json:"endpoint"`
		Status         int    `json:"status"`
		TotalMicros    int64  `json:"totalMicros"`
		DecodeMicros   int64  `json:"decodeMicros"`
		ClassifyMicros int64  `json:"classifyMicros"`
		EncodeMicros   int64  `json:"encodeMicros"`
		Tuples         int    `json:"tuples"`
		Members        int    `json:"members"`
	}
	if err := json.Unmarshal([]byte(raw[:strings.Index(raw, "\n")]), &line); err != nil {
		t.Fatalf("access log not JSON: %v\n%s", err, raw)
	}
	if line.Endpoint != "classify" || line.Status != 200 || line.Tuples != 2 {
		t.Fatalf("access log = %+v", line)
	}
	if line.Members < 2 {
		t.Fatalf("early-exit trace evaluated %d members for 2 tuples", line.Members)
	}
	spanSum := line.DecodeMicros + line.ClassifyMicros + line.EncodeMicros
	if spanSum > line.TotalMicros {
		t.Fatalf("span sum %dµs exceeds request total %dµs", spanSum, line.TotalMicros)
	}
	if s.mw.Sampled() != 1 {
		t.Fatalf("Sampled() = %d, want 1", s.mw.Sampled())
	}
	if s.mw.SpanTotalNanos(obs.SpanDecode) <= 0 || s.mw.SpanTotalNanos(obs.SpanClassify) <= 0 {
		t.Fatal("span nanos not folded into middleware state")
	}
	if s.mw.SpanSnapshot(obs.SpanClassify).Total() != 1 {
		t.Fatal("classify span histogram did not record the request")
	}
}

// TestPprofListener: the -pprof mux serves the profile index off the
// serving handler entirely.
func TestPprofListener(t *testing.T) {
	ts := httptest.NewServer(pprofMux())
	defer ts.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		res, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusOK || len(body) == 0 {
			t.Fatalf("%s: status %d, %d bytes", path, res.StatusCode, len(body))
		}
	}
	// The serving handler itself must NOT expose pprof.
	s, err := newServer(trainModel(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	app := httptest.NewServer(s.handler())
	defer app.Close()
	res, err := http.Get(app.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode == http.StatusOK {
		t.Fatal("pprof reachable on the serving handler")
	}
}
