package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"udt"
	"udt/internal/forest"
)

// trainBoostedModel trains a boosted ensemble on the shared CSV fixture and
// writes the v2 weighted container to dir.
func trainBoostedModel(t *testing.T, dir string) string {
	t.Helper()
	ds, err := udt.ReadCSV(strings.NewReader(trainCSV), "train")
	if err != nil {
		t.Fatal(err)
	}
	f, err := udt.TrainBoosted(ds, udt.BoostConfig{
		Rounds: 5, TreeConfig: udt.Config{MaxDepth: 2, MinWeight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "boosted.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServeBoostedModel: a boosted container must load, classify and report
// its kind and per-member vote weights on /healthz — the serving side of the
// weighted-ensemble contract.
func TestServeBoostedModel(t *testing.T) {
	s, err := newServer(trainBoostedModel(t, t.TempDir()), 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	res := postJSON(t, ts.URL+"/classify", `{"tuples": [
		{"num": [0.2, [1, 2, 3]]},
		{"num": [9.2, [12, 13, 14]]}
	]}`)
	var batch struct {
		Results []struct {
			Class string `json:"class"`
		} `json:"results"`
	}
	decodeBody(t, res, http.StatusOK, &batch)
	if len(batch.Results) != 2 || batch.Results[0].Class != "lo" || batch.Results[1].Class != "hi" {
		t.Fatalf("boosted batch = %+v", batch.Results)
	}

	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Format        string    `json:"format"`
		FormatVersion int       `json:"formatVersion"`
		Kind          string    `json:"kind"`
		Trees         int       `json:"trees"`
		MemberWeights []float64 `json:"memberWeights"`
		Description   string    `json:"description"`
	}
	decodeBody(t, hres, http.StatusOK, &health)
	if health.Format != "forest" || health.FormatVersion != forest.Version || health.Kind != forest.KindBoosted {
		t.Fatalf("healthz = %+v", health)
	}
	if len(health.MemberWeights) != health.Trees || health.Trees < 1 {
		t.Fatalf("healthz reports %d weights for %d trees", len(health.MemberWeights), health.Trees)
	}
	for i, w := range health.MemberWeights {
		if w <= 0 {
			t.Fatalf("healthz weight %d = %v", i, w)
		}
	}
	if !strings.Contains(health.Description, "boosted") {
		t.Fatalf("description %q does not name the ensemble kind", health.Description)
	}
}

// TestReloadTreeToBoosted: hot reload must swap a single tree for a boosted
// ensemble transparently — the same path operators use to roll out a
// boosted model over a running tree server.
func TestReloadTreeToBoosted(t *testing.T) {
	dir := t.TempDir()
	treePath := trainModel(t)
	modelPath := filepath.Join(dir, "model.json")
	blob, err := os.ReadFile(treePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(modelPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := newServer(modelPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	boosted, err := os.ReadFile(trainBoostedModel(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(modelPath, boosted, 0o644); err != nil {
		t.Fatal(err)
	}
	res := postJSON(t, ts.URL+"/reload", `{}`)
	var rl struct {
		Generation  int64  `json:"generation"`
		Description string `json:"description"`
	}
	decodeBody(t, res, http.StatusOK, &rl)
	if rl.Generation != 2 || !strings.Contains(rl.Description, "boosted") {
		t.Fatalf("reload = %+v", rl)
	}

	res = postJSON(t, ts.URL+"/classify", `{"num": [9.2, [12, 13, 14]]}`)
	var single struct {
		Class string `json:"class"`
	}
	decodeBody(t, res, http.StatusOK, &single)
	if single.Class != "hi" {
		t.Fatalf("post-reload classification = %q", single.Class)
	}
}

// TestClassifyStreamGolden pins POST /classify/stream to the shared golden
// stream in testdata/stream: the exact bytes "udtree predict -format
// ndjson" prints for the same tuples (cmd/udtree pins the CLI side to the
// same file). Regenerate the fixtures with `go run testdata/stream/gen.go`
// from the repo root.
func TestClassifyStreamGolden(t *testing.T) {
	fixtures := "../../testdata/stream"
	s, err := newServer(fixtures+"/model.json", 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	input, err := os.Open(fixtures + "/input.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer input.Close()
	res, err := http.Post(ts.URL+"/classify/stream", ndjsonType, input)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(fixtures + "/golden.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(golden) {
		t.Fatalf("/classify/stream diverges from the CLI ndjson golden.\ngot:\n%swant:\n%s", body, golden)
	}
}

// openStream starts one held-open /classify/stream request: it sends a
// single tuple, waits for the first response line (proving the stream was
// admitted and is live), and leaves the request body open so the stream
// stays active until close is called.
func openStream(t *testing.T, url string) (close func(), res *http.Response) {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, url+"/classify/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ndjsonType)
	resCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- r
	}()
	if _, err := io.WriteString(pw, `{"num": [0.2, [1, 2, 3]]}`+"\n"); err != nil {
		t.Fatal(err)
	}
	select {
	case res = <-resCh:
	case err := <-errCh:
		t.Fatalf("stream request failed: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("stream response headers never arrived")
	}
	if res.StatusCode != http.StatusOK {
		res.Body.Close()
		pw.Close()
		t.Fatalf("stream refused with %d before the cap was reached", res.StatusCode)
	}
	buf := make([]byte, 1)
	if _, err := res.Body.Read(buf); err != nil {
		t.Fatalf("first stream byte never arrived: %v", err)
	}
	return func() {
		pw.Close()
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
	}, res
}

// TestMaxStreamsAdmission proves the -max-streams cap: concurrent streams
// beyond the cap are refused with 503 + Retry-After, refused streams are
// counted and do not occupy a slot (the pool does not wedge), and closing an
// active stream frees its slot for the next client.
func TestMaxStreamsAdmission(t *testing.T) {
	s, err := newServer(trainModel(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	s.maxStreams = 2
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	close1, _ := openStream(t, ts.URL)
	close2, _ := openStream(t, ts.URL)

	// The cap is reached: the next stream must be refused immediately.
	res, err := http.Post(ts.URL+"/classify/stream", ndjsonType, strings.NewReader(`{"num": [0.2, [1, 2, 3]]}`))
	if err != nil {
		t.Fatal(err)
	}
	var e struct {
		Error string `json:"error"`
	}
	decodeBody(t, res, http.StatusServiceUnavailable, &e)
	if res.Header.Get("Retry-After") == "" {
		t.Fatal("503 refusal carries no Retry-After header")
	}
	if !strings.Contains(e.Error, "admission") {
		t.Fatalf("refusal error = %q", e.Error)
	}

	// Saturated streams must not block the batch endpoint.
	bres := postJSON(t, ts.URL+"/classify", `{"num": [9.2, [12, 13, 14]]}`)
	var single struct {
		Class string `json:"class"`
	}
	decodeBody(t, bres, http.StatusOK, &single)
	if single.Class != "hi" {
		t.Fatalf("classify under stream saturation = %q", single.Class)
	}

	// Refusals are counted and the active gauge holds at the cap.
	mres, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Stream struct {
			Active   int64 `json:"active"`
			Rejected int64 `json:"rejected"`
		} `json:"stream"`
	}
	decodeBody(t, mres, http.StatusOK, &m)
	if m.Stream.Active != 2 || m.Stream.Rejected != 1 {
		t.Fatalf("stream metrics = %+v", m.Stream)
	}

	// Closing one stream frees a slot: a refused client's retry succeeds.
	close1()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("freed stream slot never became available")
		}
		res, err := http.Post(ts.URL+"/classify/stream", ndjsonType, strings.NewReader(`{"num": [0.2, [1, 2, 3]]}`))
		if err != nil {
			t.Fatal(err)
		}
		ok := res.StatusCode == http.StatusOK
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if ok {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	close2()
}
