package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"udt"
	"udt/internal/forest"
	"udt/internal/modelio"
	"udt/internal/registry"
)

// trainCSV mirrors the cmd/udtree fixture: a mixed point/pdf dataset whose
// two classes are cleanly separable.
const trainCSV = `x,y,class
0.1,1;2;3,lo
0.2,2;3;4,lo
0.3,1;3;5,lo
0.4,2;2;3,lo
9.1,11;12;13,hi
9.2,12;13;14,hi
9.3,11;13;15,hi
9.4,12;12;13,hi
`

// trainModel performs exactly what "udtree train" does — CSV in, tree
// built, JSON model out — and returns the model path.
func trainModel(t *testing.T) string {
	t.Helper()
	ds, err := udt.ReadCSV(strings.NewReader(trainCSV), "train")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := udt.Build(ds, udt.Config{MinWeight: 1, PostPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.MarshalIndent(tree, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTrainServeClassifyRoundTrip is the train -> serve -> classify
// integration test: a model trained from CSV, written to disk in udtree's
// JSON format, loaded and compiled by the server, and queried over HTTP
// with single and batch bodies.
func TestTrainServeClassifyRoundTrip(t *testing.T) {
	s, err := newServer(trainModel(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Single tuple: a point x and a pdf y deep in "lo" territory.
	res := postJSON(t, ts.URL+"/classify", `{"num": [0.2, {"xs": [1, 2, 4], "masses": [1, 1, 1]}]}`)
	var single struct {
		Class string             `json:"class"`
		Dist  map[string]float64 `json:"dist"`
	}
	decodeBody(t, res, http.StatusOK, &single)
	if single.Class != "lo" {
		t.Fatalf("single classification = %q, want lo", single.Class)
	}
	if sum := single.Dist["lo"] + single.Dist["hi"]; sum < 0.999 || sum > 1.001 {
		t.Fatalf("distribution does not sum to 1: %v", single.Dist)
	}

	// Batch: one per class, plus raw-measurement and missing-value styles.
	res = postJSON(t, ts.URL+"/classify", `{"tuples": [
		{"num": [0.15, [1, 2, 3, 2]]},
		{"num": [9.2, 12.5]},
		{"num": [null, [11, 13, 15]]}
	]}`)
	var batch struct {
		Results []struct {
			Class string             `json:"class"`
			Dist  map[string]float64 `json:"dist"`
		} `json:"results"`
	}
	decodeBody(t, res, http.StatusOK, &batch)
	if len(batch.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(batch.Results))
	}
	for i, want := range []string{"lo", "hi", "hi"} {
		if got := batch.Results[i].Class; got != want {
			t.Fatalf("batch tuple %d classified %q, want %q", i, got, want)
		}
	}

	// Health endpoint reports the model.
	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string   `json:"status"`
		Classes []string `json:"classes"`
		Nodes   int      `json:"nodes"`
	}
	decodeBody(t, hres, http.StatusOK, &health)
	if health.Status != "ok" || health.Nodes < 1 || len(health.Classes) != 2 {
		t.Fatalf("healthz = %+v", health)
	}
}

// TestServerMatchesLibrary: the HTTP path must agree with direct library
// classification on the training tuples.
func TestServerMatchesLibrary(t *testing.T) {
	path := trainModel(t)
	s, err := newServer(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	ds, err := udt.ReadCSV(strings.NewReader(trainCSV), "train")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tree udt.Tree
	if err := json.Unmarshal(blob, &tree); err != nil {
		t.Fatal(err)
	}
	for i, tu := range ds.Tuples {
		want := tree.Classes[tree.Predict(tu)]
		// Re-encode the tuple through the wire format.
		var parts []string
		for _, p := range tu.Num {
			if p.NumSamples() == 1 {
				parts = append(parts, fmt.Sprintf("%g", p.Mean()))
				continue
			}
			var xs []string
			for k := 0; k < p.NumSamples(); k++ {
				xs = append(xs, fmt.Sprintf("%g", p.X(k)))
			}
			parts = append(parts, "["+strings.Join(xs, ",")+"]")
		}
		body := `{"num": [` + strings.Join(parts, ",") + `]}`
		res := postJSON(t, ts.URL+"/classify", body)
		var got struct {
			Class string `json:"class"`
		}
		decodeBody(t, res, http.StatusOK, &got)
		if got.Class != want {
			t.Fatalf("tuple %d: server says %q, library says %q", i, got.Class, want)
		}
	}
}

func TestClassifyBadRequests(t *testing.T) {
	s, err := newServer(trainModel(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	cases := map[string]string{
		"not json":           `{`,
		"unknown field":      `{"bogus": 1}`,
		"wrong arity":        `{"num": [1]}`,
		"mixed single+batch": `{"num": [1, 2], "tuples": []}`,
		"bad pdf object":     `{"num": [{"xs": [1], "masses": []}, 2]}`,
		"non-number value":   `{"num": ["abc", 2]}`,
	}
	for name, body := range cases {
		res := postJSON(t, ts.URL+"/classify", body)
		var e struct {
			Error string `json:"error"`
		}
		decodeBody(t, res, http.StatusBadRequest, &e)
		if e.Error == "" {
			t.Errorf("%s: no error message", name)
		}
	}
	// Wrong method and wrong path 404/405.
	res, err := http.Get(ts.URL + "/classify")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode == http.StatusOK {
		t.Error("GET /classify should not succeed")
	}
}

func TestRunFlagValidation(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{}); err == nil || !strings.Contains(err.Error(), "-model is required") {
		t.Errorf("missing -model: %v", err)
	}
	if err := run(ctx, []string{"-model", "m.json", "-workers", "0"}); err == nil || !strings.Contains(err.Error(), "must be >= 1") {
		t.Errorf("bad -workers: %v", err)
	}
	if err := run(ctx, []string{"-model", "/nonexistent/model.json"}); err == nil {
		t.Error("missing model file not caught")
	}
}

// TestRunServesAndShutsDown boots the real server on an ephemeral port and
// cancels the context: run must return cleanly (graceful shutdown).
func TestRunServesAndShutsDown(t *testing.T) {
	path := trainModel(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-model", path, "-addr", "127.0.0.1:0"}) }()
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not shut down after cancel")
	}
}

// trainForestModel trains a bagged forest on the shared CSV fixture and
// writes the versioned container to dir.
func trainForestModel(t *testing.T, dir string, trees int) string {
	t.Helper()
	ds, err := udt.ReadCSV(strings.NewReader(trainCSV), "train")
	if err != nil {
		t.Fatal(err)
	}
	f, err := udt.TrainForest(ds, udt.ForestConfig{
		Trees: trees, Seed: 5, TreeConfig: udt.Config{MinWeight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "forest.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServeForestModel: the server must load a forest container
// transparently, classify through the ensemble, and report forest metadata
// in /healthz.
func TestServeForestModel(t *testing.T) {
	s, err := newServer(trainForestModel(t, t.TempDir(), 7), 4)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	res := postJSON(t, ts.URL+"/classify", `{"tuples": [
		{"num": [0.2, [1, 2, 3]]},
		{"num": [9.2, [12, 13, 14]]}
	]}`)
	var batch struct {
		Results []struct {
			Class string `json:"class"`
		} `json:"results"`
	}
	decodeBody(t, res, http.StatusOK, &batch)
	if len(batch.Results) != 2 || batch.Results[0].Class != "lo" || batch.Results[1].Class != "hi" {
		t.Fatalf("forest batch = %+v", batch.Results)
	}

	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Format        string `json:"format"`
		FormatVersion int    `json:"formatVersion"`
		Kind          string `json:"kind"`
		Trees         int    `json:"trees"`
		Generation    int64  `json:"generation"`
		OOB           *struct {
			Accuracy  float64 `json:"accuracy"`
			Evaluated int     `json:"evaluated"`
		} `json:"oob"`
	}
	decodeBody(t, hres, http.StatusOK, &health)
	if health.Format != "forest" || health.FormatVersion != forest.Version || health.Kind != "bagged" || health.Trees != 7 || health.Generation != 1 {
		t.Fatalf("healthz = %+v", health)
	}
	if health.OOB == nil || health.OOB.Evaluated == 0 {
		t.Fatalf("healthz reports no OOB stats: %+v", health)
	}
}

// TestReloadSwapsModel: POST /reload must swap from a tree to a forest
// model atomically while concurrent classifications keep succeeding — no
// dropped or mixed responses.
func TestReloadSwapsModel(t *testing.T) {
	dir := t.TempDir()
	treePath := trainModel(t)
	modelPath := filepath.Join(dir, "model.json")
	copyFile(t, treePath, modelPath)

	s, err := newServer(modelPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Hammer /classify from several goroutines while models swap below.
	stop := make(chan struct{})
	errs := make(chan error, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := http.Post(ts.URL+"/classify", "application/json",
					bytes.NewReader([]byte(`{"num": [0.2, [1, 2, 3]]}`)))
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				var got struct {
					Class string `json:"class"`
				}
				err = json.NewDecoder(res.Body).Decode(&got)
				res.Body.Close()
				if err != nil || res.StatusCode != http.StatusOK || got.Class != "lo" {
					select {
					case errs <- fmt.Errorf("status %d class %q err %v", res.StatusCode, got.Class, err):
					default:
					}
					return
				}
			}
		}()
	}

	// Swap tree -> forest -> tree while traffic flows.
	forestPath := trainForestModel(t, dir, 5)
	wantGen := int64(1)
	for i, src := range []string{forestPath, treePath, forestPath} {
		copyFile(t, src, modelPath)
		res := postJSON(t, ts.URL+"/reload", `{}`)
		var rl struct {
			Status     string `json:"status"`
			Generation int64  `json:"generation"`
		}
		decodeBody(t, res, http.StatusOK, &rl)
		wantGen++
		if rl.Status != "reloaded" || rl.Generation != wantGen {
			t.Fatalf("reload %d: %+v, want generation %d", i, rl, wantGen)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("classification failed during reloads: %v", err)
	default:
	}

	// The active model is now the forest.
	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Format     string `json:"format"`
		Generation int64  `json:"generation"`
	}
	decodeBody(t, hres, http.StatusOK, &health)
	if health.Format != "forest" || health.Generation != 4 {
		t.Fatalf("after reloads healthz = %+v", health)
	}
}

// TestReloadFailureKeepsModel: a broken model file must fail the reload with
// a 500 and leave the previous model serving.
func TestReloadFailureKeepsModel(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.json")
	copyFile(t, trainModel(t), modelPath)
	s, err := newServer(modelPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	if err := os.WriteFile(modelPath, []byte(`{"version": 99, "trees": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	res := postJSON(t, ts.URL+"/reload", `{}`)
	var e struct {
		Error string `json:"error"`
	}
	decodeBody(t, res, http.StatusInternalServerError, &e)
	if !strings.Contains(e.Error, "version") {
		t.Fatalf("reload error = %q", e.Error)
	}

	res = postJSON(t, ts.URL+"/classify", `{"num": [0.2, [1, 2, 3]]}`)
	var got struct {
		Class string `json:"class"`
	}
	decodeBody(t, res, http.StatusOK, &got)
	if got.Class != "lo" {
		t.Fatalf("old model no longer serving after failed reload: %+v", got)
	}
}

// TestMetricsEndpoint: counters must reflect the traffic, including the
// batch-size histogram and error counts.
func TestMetricsEndpoint(t *testing.T) {
	s, err := newServer(trainModel(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// 2 single classifications, 1 batch of 3, 1 bad request.
	postJSON(t, ts.URL+"/classify", `{"num": [0.2, [1, 2, 3]]}`).Body.Close()
	postJSON(t, ts.URL+"/classify", `{"num": [9.2, [12, 13]]}`).Body.Close()
	postJSON(t, ts.URL+"/classify", `{"tuples": [{"num": [1, 2]}, {"num": [2, 3]}, {"num": [3, 4]}]}`).Body.Close()
	postJSON(t, ts.URL+"/classify", `{"bogus": true}`).Body.Close()

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		TuplesClassified int64            `json:"tuplesClassified"`
		BatchSizes       map[string]int64 `json:"batchSizes"`
		Endpoints        map[string]struct {
			Requests int64 `json:"requests"`
			Errors   int64 `json:"errors"`
		} `json:"endpoints"`
	}
	decodeBody(t, res, http.StatusOK, &m)
	if m.TuplesClassified != 5 {
		t.Fatalf("tuplesClassified = %d, want 5", m.TuplesClassified)
	}
	if m.BatchSizes["1"] != 2 || m.BatchSizes["3-4"] != 1 {
		t.Fatalf("batchSizes = %v", m.BatchSizes)
	}
	cl := m.Endpoints["classify"]
	if cl.Requests != 4 || cl.Errors != 1 {
		t.Fatalf("classify endpoint stats = %+v", cl)
	}
}

// TestClassifyStreamNDJSON: the streaming endpoint must answer one NDJSON
// line per input line, keep going past a malformed middle line (answering it
// with an in-band error object), and tag the response with the NDJSON
// content type. Runs under -race in CI.
func TestClassifyStreamNDJSON(t *testing.T) {
	s, err := newServer(trainModel(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	body := strings.Join([]string{
		`{"num": [0.2, [1, 2, 3]]}`,
		`{"num": [0.2, "not a number"]}`, // malformed: stream must continue
		``,                               // blank line: skipped, numbering preserved
		`{"num": [9.2, [12, 13, 14]]}`,
		`{"num": [1, 2]}{"num": [9, 9]}`, // concatenated docs: refused, not half-accepted
	}, "\n") + "\n"
	res, err := http.Post(ts.URL+"/classify/stream", ndjsonType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != ndjsonType {
		t.Fatalf("Content-Type %q, want %q", ct, ndjsonType)
	}
	var lines []modelio.StreamResult
	dec := json.NewDecoder(res.Body)
	for dec.More() {
		var ln modelio.StreamResult
		if err := dec.Decode(&ln); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, ln)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d response lines, want 4: %+v", len(lines), lines)
	}
	if lines[0].Line != 1 || lines[0].Class != "lo" || lines[0].Error != "" {
		t.Errorf("line 1 = %+v", lines[0])
	}
	if lines[1].Line != 2 || lines[1].Error == "" || lines[1].Class != "" {
		t.Errorf("line 2 (malformed) = %+v", lines[1])
	}
	if lines[2].Line != 4 || lines[2].Class != "hi" {
		t.Errorf("line 4 = %+v", lines[2])
	}
	if lines[3].Line != 5 || !strings.Contains(lines[3].Error, "trailing data") {
		t.Errorf("line 5 (concatenated docs) = %+v", lines[3])
	}
	if sum := lines[0].Dist["lo"] + lines[0].Dist["hi"]; sum < 0.999 || sum > 1.001 {
		t.Errorf("line 1 distribution does not sum to 1: %v", lines[0].Dist)
	}

	// The stream counters saw 4 answered lines, 2 of them errors.
	res2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Stream struct {
			Lines      int64 `json:"lines"`
			LineErrors int64 `json:"lineErrors"`
		} `json:"stream"`
		TuplesClassified int64            `json:"tuplesClassified"`
		BatchSizes       map[string]int64 `json:"batchSizes"`
	}
	decodeBody(t, res2, http.StatusOK, &m)
	if m.Stream.Lines != 4 || m.Stream.LineErrors != 2 || m.TuplesClassified != 2 {
		t.Fatalf("stream metrics = %+v, tuples = %d", m.Stream, m.TuplesClassified)
	}
	// Stream lines must not pollute the /classify batch-size histogram.
	if len(m.BatchSizes) != 0 {
		t.Fatalf("stream traffic leaked into batchSizes: %v", m.BatchSizes)
	}
}

// flushingRecorder is a ResponseWriter that records writes and counts Flush
// calls, safe for concurrent inspection while a handler is mid-stream.
type flushingRecorder struct {
	mu      sync.Mutex
	header  http.Header
	body    bytes.Buffer
	flushes int
}

func (r *flushingRecorder) Header() http.Header {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.header == nil {
		r.header = http.Header{}
	}
	return r.header
}

func (r *flushingRecorder) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.body.Write(p)
}

func (r *flushingRecorder) WriteHeader(int) {}

func (r *flushingRecorder) Flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushes++
}

func (r *flushingRecorder) snapshot() (flushes int, body string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flushes, r.body.String()
}

// TestClassifyStreamFlushesPerLine: each answered line must be flushed to
// the client before the next input line arrives — the interactive contract
// of the stream endpoint. The handler runs against a pipe body through the
// full instrument wrapper, so this also pins statusRecorder forwarding
// Flush (without it the http.Flusher assertion fails against the wrapper
// and nothing is ever flushed). The Go HTTP client buffers streaming
// request bodies, so this is tested at the handler layer, where delivery
// can be observed mid-request.
func TestClassifyStreamFlushesPerLine(t *testing.T) {
	s, err := newServer(trainModel(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	pr, pw := io.Pipe()
	req := httptest.NewRequest(http.MethodPost, "/classify/stream", pr)
	rec := &flushingRecorder{}
	done := make(chan struct{})
	go func() {
		s.handler().ServeHTTP(rec, req)
		close(done)
	}()

	waitFor := func(wantFlushes int, wantClass string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			flushes, body := rec.snapshot()
			if flushes >= wantFlushes && strings.Contains(body, wantClass) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("after input line %d: flushes=%d body=%q (stream not flushing per line)",
					wantFlushes, flushes, body)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	if _, err := io.WriteString(pw, `{"num": [0.2, [1, 2, 3]]}`+"\n"); err != nil {
		t.Fatal(err)
	}
	// The first answer must arrive while the request body is still open.
	waitFor(1, `"class":"lo"`)
	if _, err := io.WriteString(pw, `{"num": [9.2, [12, 13, 14]]}`+"\n"); err != nil {
		t.Fatal(err)
	}
	waitFor(2, `"class":"hi"`)
	pw.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after body EOF")
	}
}

// TestClassifyStreamFullDuplex: over a real HTTP/1.1 connection, answer N
// must reach the client BEFORE line N+1 is sent — the interactive contract.
// This needs a raw chunked client because Go's HTTP client buffers
// streaming request bodies, and it pins EnableFullDuplex: without it the
// server's first response write closes the request body and the exchange
// deadlocks. Runs under -race in CI.
func TestClassifyStreamFullDuplex(t *testing.T) {
	s, err := newServer(trainModel(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "POST /classify/stream HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\nContent-Type: application/x-ndjson\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	chunk := func(s string) {
		t.Helper()
		if _, err := fmt.Fprintf(conn, "%x\r\n%s\r\n", len(s), s); err != nil {
			t.Fatal(err)
		}
	}
	// readLine skips response headers and chunked framing, returning the
	// next NDJSON object, failing if it does not arrive promptly.
	readLine := func() modelio.StreamResult {
		t.Helper()
		if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
			t.Fatal(err)
		}
		for {
			raw, err := br.ReadString('\n')
			if err != nil {
				t.Fatalf("response line never arrived while request body open (half-duplex regression): %v", err)
			}
			if strings.HasPrefix(raw, "{") {
				var ln modelio.StreamResult
				if err := json.Unmarshal([]byte(raw), &ln); err != nil {
					t.Fatal(err)
				}
				return ln
			}
		}
	}

	chunk(`{"num": [0.2, [1, 2, 3]]}` + "\n")
	if ln := readLine(); ln.Line != 1 || ln.Class != "lo" {
		t.Fatalf("first answer = %+v", ln)
	}
	// Only after the first answer arrived, send the second line.
	chunk(`{"num": [9.2, [12, 13, 14]]}` + "\n")
	if ln := readLine(); ln.Line != 2 || ln.Class != "hi" {
		t.Fatalf("second answer = %+v", ln)
	}
	if _, err := io.WriteString(conn, "0\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
}

// TestClassifyStreamMatchesBatch: the NDJSON path must classify identically
// to POST /classify over the same tuples.
func TestClassifyStreamMatchesBatch(t *testing.T) {
	s, err := newServer(trainModel(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	tuples := []string{
		`{"num": [0.15, [1, 2, 3, 2]]}`,
		`{"num": [9.2, 12.5]}`,
		`{"num": [null, [11, 13, 15]]}`,
	}
	res := postJSON(t, ts.URL+"/classify", `{"tuples": [`+strings.Join(tuples, ",")+`]}`)
	var batch struct {
		Results []struct {
			Class string `json:"class"`
		} `json:"results"`
	}
	decodeBody(t, res, http.StatusOK, &batch)

	res, err = http.Post(ts.URL+"/classify/stream", ndjsonType, strings.NewReader(strings.Join(tuples, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	dec := json.NewDecoder(res.Body)
	for i := 0; dec.More(); i++ {
		var ln modelio.StreamResult
		if err := dec.Decode(&ln); err != nil {
			t.Fatal(err)
		}
		if ln.Class != batch.Results[i].Class {
			t.Errorf("tuple %d: stream %q, batch %q", i, ln.Class, batch.Results[i].Class)
		}
	}
}

// TestAcceptNegotiation: a request that cannot accept the endpoint's content
// type is refused with 406; wildcards and exact types pass.
func TestAcceptNegotiation(t *testing.T) {
	s, err := newServer(trainModel(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	get := func(url, accept string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for accept, want := range map[string]int{
		"":                      http.StatusOK,
		"*/*":                   http.StatusOK,
		"application/*":         http.StatusOK,
		"application/json":      http.StatusOK,
		"text/html, */*;q=0.1":  http.StatusOK,
		"application/JSON":      http.StatusOK, // media types are case-insensitive
		"text/html":             http.StatusNotAcceptable,
		"application/x-ndjson":  http.StatusNotAcceptable,
		"image/png, text/plain": http.StatusNotAcceptable,
		// q=0 is an explicit refusal (RFC 9110 §12.4.2).
		"application/json;q=0":            http.StatusNotAcceptable,
		"*/*;q=0":                         http.StatusNotAcceptable,
		"application/json;q=0.0, img/png": http.StatusNotAcceptable,
		"text/html;q=0, application/json": http.StatusOK,
		// The most specific matching range governs: an exact-type q=0
		// refusal beats an accepting wildcard, and vice versa.
		"*/*;q=0.1, application/json;q=0": http.StatusNotAcceptable,
		"application/*;q=0, */*":          http.StatusNotAcceptable,
		"application/json, */*;q=0":       http.StatusOK,
	} {
		res := get(ts.URL+"/healthz", accept)
		res.Body.Close()
		if res.StatusCode != want {
			t.Errorf("Accept %q on /healthz: status %d, want %d", accept, res.StatusCode, want)
		}
	}

	// Multiple Accept header lines are combined, not judged on the first.
	req2, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req2.Header.Add("Accept", "text/html")
	req2.Header.Add("Accept", "application/json")
	res2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode != http.StatusOK {
		t.Errorf("two Accept lines (html + json): status %d, want 200", res2.StatusCode)
	}

	// The stream endpoint produces NDJSON, not JSON.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/classify/stream", strings.NewReader(`{"num": [1, 2]}`))
	req.Header.Set("Accept", "application/json")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var e struct {
		Error     string `json:"error"`
		RequestID string `json:"requestId"`
	}
	decodeBody(t, res, http.StatusNotAcceptable, &e)
	if !strings.Contains(e.Error, ndjsonType) || e.RequestID == "" {
		t.Fatalf("406 body = %+v", e)
	}
}

// TestRequestIDs: every response carries an X-Request-Id — echoed when the
// caller set one, generated otherwise — and error bodies repeat it.
func TestRequestIDs(t *testing.T) {
	s, err := newServer(trainModel(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Generated when absent.
	res := postJSON(t, ts.URL+"/classify", `{"num": [0.2, [1, 2, 3]]}`)
	gen := res.Header.Get("X-Request-Id")
	res.Body.Close()
	if len(gen) != 16 {
		t.Fatalf("generated X-Request-Id = %q, want 16 hex chars", gen)
	}

	// Echoed when present, including on errors, and repeated in the body.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/classify", strings.NewReader(`{"bogus": 1}`))
	req.Header.Set("X-Request-Id", "trace-42")
	res, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Header.Get("X-Request-Id"); got != "trace-42" {
		t.Fatalf("echoed X-Request-Id = %q", got)
	}
	var e struct {
		Error     string `json:"error"`
		RequestID string `json:"requestId"`
	}
	decodeBody(t, res, http.StatusBadRequest, &e)
	if e.RequestID != "trace-42" {
		t.Fatalf("error body requestId = %q, want trace-42", e.RequestID)
	}
}

// TestWatchReload: the -watch poller must notice an mtime change and swap
// the model through the reload path without any operator call.
func TestWatchReload(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.json")
	treePath := trainModel(t)
	copyFile(t, treePath, modelPath)
	s, err := newServer(modelPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.watchLoop(ctx, 5*time.Millisecond)

	// Replace the file with a forest; ensure the mtime moves even on coarse
	// filesystem clocks.
	forestPath := trainForestModel(t, dir, 3)
	now := time.Now().Add(time.Second)
	copyFile(t, forestPath, modelPath)
	if err := os.Chtimes(modelPath, now, now); err != nil {
		t.Fatal(err)
	}

	entry := s.reg.Default()
	waitGen := func(want int64) *registry.Active {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if entry.Generation() == want {
				am := entry.Acquire()
				if am.Generation == want {
					return am
				}
				am.Release()
			}
			if time.Now().After(deadline) {
				t.Fatalf("watch poller never reached generation %d (at %d)", want, entry.Generation())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	am := waitGen(2)
	if _, ok := am.Model.(*forest.Forest); !ok {
		t.Fatalf("watch reloaded the wrong model: %s", am.Model.Describe())
	}
	am.Release()
	if s.mtr.watchReloads.Load() != 1 {
		t.Fatalf("watchReloads = %d", s.mtr.watchReloads.Load())
	}

	// A replace that lands within the filesystem's mtime granularity (same
	// mtime, different size) must still be detected.
	copyFile(t, treePath, modelPath)
	if err := os.Chtimes(modelPath, now, now); err != nil {
		t.Fatal(err)
	}
	am = waitGen(3)
	if _, ok := am.Model.(*modelio.TreeModel); !ok {
		t.Fatalf("same-mtime replace loaded the wrong model: %s", am.Model.Describe())
	}
	am.Release()
}

// TestWatchFlagValidation: a negative -watch interval is rejected.
func TestWatchFlagValidation(t *testing.T) {
	err := run(context.Background(), []string{"-model", "m.json", "-watch", "-1s"})
	if err == nil || !strings.Contains(err.Error(), "-watch") {
		t.Fatalf("negative -watch: %v", err)
	}
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	blob, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	res, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func decodeBody(t *testing.T, res *http.Response, wantCode int, v any) {
	t.Helper()
	defer res.Body.Close()
	if res.StatusCode != wantCode {
		t.Fatalf("status %d, want %d", res.StatusCode, wantCode)
	}
	if err := json.NewDecoder(res.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
