package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"udt"
)

// trainCSV mirrors the cmd/udtree fixture: a mixed point/pdf dataset whose
// two classes are cleanly separable.
const trainCSV = `x,y,class
0.1,1;2;3,lo
0.2,2;3;4,lo
0.3,1;3;5,lo
0.4,2;2;3,lo
9.1,11;12;13,hi
9.2,12;13;14,hi
9.3,11;13;15,hi
9.4,12;12;13,hi
`

// trainModel performs exactly what "udtree train" does — CSV in, tree
// built, JSON model out — and returns the model path.
func trainModel(t *testing.T) string {
	t.Helper()
	ds, err := udt.ReadCSV(strings.NewReader(trainCSV), "train")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := udt.Build(ds, udt.Config{MinWeight: 1, PostPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.MarshalIndent(tree, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTrainServeClassifyRoundTrip is the train -> serve -> classify
// integration test: a model trained from CSV, written to disk in udtree's
// JSON format, loaded and compiled by the server, and queried over HTTP
// with single and batch bodies.
func TestTrainServeClassifyRoundTrip(t *testing.T) {
	s, err := newServer(trainModel(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Single tuple: a point x and a pdf y deep in "lo" territory.
	res := postJSON(t, ts.URL+"/classify", `{"num": [0.2, {"xs": [1, 2, 4], "masses": [1, 1, 1]}]}`)
	var single struct {
		Class string             `json:"class"`
		Dist  map[string]float64 `json:"dist"`
	}
	decodeBody(t, res, http.StatusOK, &single)
	if single.Class != "lo" {
		t.Fatalf("single classification = %q, want lo", single.Class)
	}
	if sum := single.Dist["lo"] + single.Dist["hi"]; sum < 0.999 || sum > 1.001 {
		t.Fatalf("distribution does not sum to 1: %v", single.Dist)
	}

	// Batch: one per class, plus raw-measurement and missing-value styles.
	res = postJSON(t, ts.URL+"/classify", `{"tuples": [
		{"num": [0.15, [1, 2, 3, 2]]},
		{"num": [9.2, 12.5]},
		{"num": [null, [11, 13, 15]]}
	]}`)
	var batch struct {
		Results []struct {
			Class string             `json:"class"`
			Dist  map[string]float64 `json:"dist"`
		} `json:"results"`
	}
	decodeBody(t, res, http.StatusOK, &batch)
	if len(batch.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(batch.Results))
	}
	for i, want := range []string{"lo", "hi", "hi"} {
		if got := batch.Results[i].Class; got != want {
			t.Fatalf("batch tuple %d classified %q, want %q", i, got, want)
		}
	}

	// Health endpoint reports the model.
	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string   `json:"status"`
		Classes []string `json:"classes"`
		Nodes   int      `json:"nodes"`
	}
	decodeBody(t, hres, http.StatusOK, &health)
	if health.Status != "ok" || health.Nodes < 1 || len(health.Classes) != 2 {
		t.Fatalf("healthz = %+v", health)
	}
}

// TestServerMatchesLibrary: the HTTP path must agree with direct library
// classification on the training tuples.
func TestServerMatchesLibrary(t *testing.T) {
	path := trainModel(t)
	s, err := newServer(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	ds, err := udt.ReadCSV(strings.NewReader(trainCSV), "train")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tree udt.Tree
	if err := json.Unmarshal(blob, &tree); err != nil {
		t.Fatal(err)
	}
	for i, tu := range ds.Tuples {
		want := tree.Classes[tree.Predict(tu)]
		// Re-encode the tuple through the wire format.
		var parts []string
		for _, p := range tu.Num {
			if p.NumSamples() == 1 {
				parts = append(parts, fmt.Sprintf("%g", p.Mean()))
				continue
			}
			var xs []string
			for k := 0; k < p.NumSamples(); k++ {
				xs = append(xs, fmt.Sprintf("%g", p.X(k)))
			}
			parts = append(parts, "["+strings.Join(xs, ",")+"]")
		}
		body := `{"num": [` + strings.Join(parts, ",") + `]}`
		res := postJSON(t, ts.URL+"/classify", body)
		var got struct {
			Class string `json:"class"`
		}
		decodeBody(t, res, http.StatusOK, &got)
		if got.Class != want {
			t.Fatalf("tuple %d: server says %q, library says %q", i, got.Class, want)
		}
	}
}

func TestClassifyBadRequests(t *testing.T) {
	s, err := newServer(trainModel(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	cases := map[string]string{
		"not json":           `{`,
		"unknown field":      `{"bogus": 1}`,
		"wrong arity":        `{"num": [1]}`,
		"mixed single+batch": `{"num": [1, 2], "tuples": []}`,
		"bad pdf object":     `{"num": [{"xs": [1], "masses": []}, 2]}`,
		"non-number value":   `{"num": ["abc", 2]}`,
	}
	for name, body := range cases {
		res := postJSON(t, ts.URL+"/classify", body)
		var e struct {
			Error string `json:"error"`
		}
		decodeBody(t, res, http.StatusBadRequest, &e)
		if e.Error == "" {
			t.Errorf("%s: no error message", name)
		}
	}
	// Wrong method and wrong path 404/405.
	res, err := http.Get(ts.URL + "/classify")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode == http.StatusOK {
		t.Error("GET /classify should not succeed")
	}
}

func TestRunFlagValidation(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{}); err == nil || !strings.Contains(err.Error(), "-model is required") {
		t.Errorf("missing -model: %v", err)
	}
	if err := run(ctx, []string{"-model", "m.json", "-workers", "0"}); err == nil || !strings.Contains(err.Error(), "must be >= 1") {
		t.Errorf("bad -workers: %v", err)
	}
	if err := run(ctx, []string{"-model", "/nonexistent/model.json"}); err == nil {
		t.Error("missing model file not caught")
	}
}

// TestRunServesAndShutsDown boots the real server on an ephemeral port and
// cancels the context: run must return cleanly (graceful shutdown).
func TestRunServesAndShutsDown(t *testing.T) {
	path := trainModel(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-model", path, "-addr", "127.0.0.1:0"}) }()
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not shut down after cancel")
	}
}

// trainForestModel trains a bagged forest on the shared CSV fixture and
// writes the versioned container to dir.
func trainForestModel(t *testing.T, dir string, trees int) string {
	t.Helper()
	ds, err := udt.ReadCSV(strings.NewReader(trainCSV), "train")
	if err != nil {
		t.Fatal(err)
	}
	f, err := udt.TrainForest(ds, udt.ForestConfig{
		Trees: trees, Seed: 5, TreeConfig: udt.Config{MinWeight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "forest.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServeForestModel: the server must load a forest container
// transparently, classify through the ensemble, and report forest metadata
// in /healthz.
func TestServeForestModel(t *testing.T) {
	s, err := newServer(trainForestModel(t, t.TempDir(), 7), 4)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	res := postJSON(t, ts.URL+"/classify", `{"tuples": [
		{"num": [0.2, [1, 2, 3]]},
		{"num": [9.2, [12, 13, 14]]}
	]}`)
	var batch struct {
		Results []struct {
			Class string `json:"class"`
		} `json:"results"`
	}
	decodeBody(t, res, http.StatusOK, &batch)
	if len(batch.Results) != 2 || batch.Results[0].Class != "lo" || batch.Results[1].Class != "hi" {
		t.Fatalf("forest batch = %+v", batch.Results)
	}

	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Format        string `json:"format"`
		FormatVersion int    `json:"formatVersion"`
		Trees         int    `json:"trees"`
		Generation    int64  `json:"generation"`
		OOB           *struct {
			Accuracy  float64 `json:"accuracy"`
			Evaluated int     `json:"evaluated"`
		} `json:"oob"`
	}
	decodeBody(t, hres, http.StatusOK, &health)
	if health.Format != "forest" || health.FormatVersion != 1 || health.Trees != 7 || health.Generation != 1 {
		t.Fatalf("healthz = %+v", health)
	}
	if health.OOB == nil || health.OOB.Evaluated == 0 {
		t.Fatalf("healthz reports no OOB stats: %+v", health)
	}
}

// TestReloadSwapsModel: POST /reload must swap from a tree to a forest
// model atomically while concurrent classifications keep succeeding — no
// dropped or mixed responses.
func TestReloadSwapsModel(t *testing.T) {
	dir := t.TempDir()
	treePath := trainModel(t)
	modelPath := filepath.Join(dir, "model.json")
	copyFile(t, treePath, modelPath)

	s, err := newServer(modelPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Hammer /classify from several goroutines while models swap below.
	stop := make(chan struct{})
	errs := make(chan error, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := http.Post(ts.URL+"/classify", "application/json",
					bytes.NewReader([]byte(`{"num": [0.2, [1, 2, 3]]}`)))
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				var got struct {
					Class string `json:"class"`
				}
				err = json.NewDecoder(res.Body).Decode(&got)
				res.Body.Close()
				if err != nil || res.StatusCode != http.StatusOK || got.Class != "lo" {
					select {
					case errs <- fmt.Errorf("status %d class %q err %v", res.StatusCode, got.Class, err):
					default:
					}
					return
				}
			}
		}()
	}

	// Swap tree -> forest -> tree while traffic flows.
	forestPath := trainForestModel(t, dir, 5)
	wantGen := int64(1)
	for i, src := range []string{forestPath, treePath, forestPath} {
		copyFile(t, src, modelPath)
		res := postJSON(t, ts.URL+"/reload", `{}`)
		var rl struct {
			Status     string `json:"status"`
			Generation int64  `json:"generation"`
		}
		decodeBody(t, res, http.StatusOK, &rl)
		wantGen++
		if rl.Status != "reloaded" || rl.Generation != wantGen {
			t.Fatalf("reload %d: %+v, want generation %d", i, rl, wantGen)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("classification failed during reloads: %v", err)
	default:
	}

	// The active model is now the forest.
	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Format     string `json:"format"`
		Generation int64  `json:"generation"`
	}
	decodeBody(t, hres, http.StatusOK, &health)
	if health.Format != "forest" || health.Generation != 4 {
		t.Fatalf("after reloads healthz = %+v", health)
	}
}

// TestReloadFailureKeepsModel: a broken model file must fail the reload with
// a 500 and leave the previous model serving.
func TestReloadFailureKeepsModel(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.json")
	copyFile(t, trainModel(t), modelPath)
	s, err := newServer(modelPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	if err := os.WriteFile(modelPath, []byte(`{"version": 99, "trees": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	res := postJSON(t, ts.URL+"/reload", `{}`)
	var e struct {
		Error string `json:"error"`
	}
	decodeBody(t, res, http.StatusInternalServerError, &e)
	if !strings.Contains(e.Error, "version") {
		t.Fatalf("reload error = %q", e.Error)
	}

	res = postJSON(t, ts.URL+"/classify", `{"num": [0.2, [1, 2, 3]]}`)
	var got struct {
		Class string `json:"class"`
	}
	decodeBody(t, res, http.StatusOK, &got)
	if got.Class != "lo" {
		t.Fatalf("old model no longer serving after failed reload: %+v", got)
	}
}

// TestMetricsEndpoint: counters must reflect the traffic, including the
// batch-size histogram and error counts.
func TestMetricsEndpoint(t *testing.T) {
	s, err := newServer(trainModel(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// 2 single classifications, 1 batch of 3, 1 bad request.
	postJSON(t, ts.URL+"/classify", `{"num": [0.2, [1, 2, 3]]}`).Body.Close()
	postJSON(t, ts.URL+"/classify", `{"num": [9.2, [12, 13]]}`).Body.Close()
	postJSON(t, ts.URL+"/classify", `{"tuples": [{"num": [1, 2]}, {"num": [2, 3]}, {"num": [3, 4]}]}`).Body.Close()
	postJSON(t, ts.URL+"/classify", `{"bogus": true}`).Body.Close()

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		TuplesClassified int64            `json:"tuplesClassified"`
		BatchSizes       map[string]int64 `json:"batchSizes"`
		Endpoints        map[string]struct {
			Requests int64 `json:"requests"`
			Errors   int64 `json:"errors"`
		} `json:"endpoints"`
	}
	decodeBody(t, res, http.StatusOK, &m)
	if m.TuplesClassified != 5 {
		t.Fatalf("tuplesClassified = %d, want 5", m.TuplesClassified)
	}
	if m.BatchSizes["1"] != 2 || m.BatchSizes["3-4"] != 1 {
		t.Fatalf("batchSizes = %v", m.BatchSizes)
	}
	cl := m.Endpoints["classify"]
	if cl.Requests != 4 || cl.Errors != 1 {
		t.Fatalf("classify endpoint stats = %+v", cl)
	}
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	blob, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	res, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func decodeBody(t *testing.T, res *http.Response, wantCode int, v any) {
	t.Helper()
	defer res.Body.Close()
	if res.StatusCode != wantCode {
		t.Fatalf("status %d, want %d", res.StatusCode, wantCode)
	}
	if err := json.NewDecoder(res.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
