package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"udt/internal/latency"
	"udt/internal/modelio"
)

// TestEarlyExitClassify: in -early-exit mode /classify must return the same
// classes as full evaluation with membersEvaluated instead of a
// distribution, and /metrics must aggregate the counters.
func TestEarlyExitClassify(t *testing.T) {
	modelPath := trainBoostedModel(t, t.TempDir())
	full, err := newServer(modelPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	early, err := newServerMode(modelPath, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	tsFull := httptest.NewServer(full.handler())
	defer tsFull.Close()
	tsEarly := httptest.NewServer(early.handler())
	defer tsEarly.Close()

	body := `{"tuples": [
		{"num": [0.2, [1, 2, 3]]},
		{"num": [9.2, [12, 13, 14]]},
		{"num": [null, [2, 3, 4]]}
	]}`
	type result struct {
		Class            string             `json:"class"`
		Dist             map[string]float64 `json:"dist"`
		MembersEvaluated int                `json:"membersEvaluated"`
	}
	var fullResp, earlyResp struct {
		Results []result `json:"results"`
	}
	decodeBody(t, postJSON(t, tsFull.URL+"/classify", body), http.StatusOK, &fullResp)
	decodeBody(t, postJSON(t, tsEarly.URL+"/classify", body), http.StatusOK, &earlyResp)
	if len(earlyResp.Results) != len(fullResp.Results) {
		t.Fatalf("%d early results, %d full", len(earlyResp.Results), len(fullResp.Results))
	}
	members := 0
	for i, er := range earlyResp.Results {
		if er.Class != fullResp.Results[i].Class {
			t.Fatalf("tuple %d: early exit %q, full %q", i, er.Class, fullResp.Results[i].Class)
		}
		if er.Dist != nil {
			t.Fatalf("tuple %d: early exit carried a distribution %v", i, er.Dist)
		}
		if er.MembersEvaluated < 1 {
			t.Fatalf("tuple %d: membersEvaluated = %d", i, er.MembersEvaluated)
		}
		members += er.MembersEvaluated
		if fullResp.Results[i].MembersEvaluated != 0 {
			t.Fatalf("tuple %d: full evaluation reported membersEvaluated", i)
		}
	}

	res, err := http.Get(tsEarly.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mtr struct {
		EarlyExit struct {
			Enabled          bool  `json:"enabled"`
			Predictions      int64 `json:"predictions"`
			MembersEvaluated int64 `json:"membersEvaluated"`
		} `json:"earlyExit"`
	}
	decodeBody(t, res, http.StatusOK, &mtr)
	if !mtr.EarlyExit.Enabled {
		t.Fatal("metrics report early exit disabled")
	}
	if mtr.EarlyExit.Predictions != 3 || mtr.EarlyExit.MembersEvaluated != int64(members) {
		t.Fatalf("metrics earlyExit = %+v, want 3 predictions / %d members", mtr.EarlyExit, members)
	}
}

// TestEarlyExitStream: the NDJSON stream must emit staged results (class +
// membersEvaluated, no dist) with classes matching full evaluation.
func TestEarlyExitStream(t *testing.T) {
	modelPath := trainBoostedModel(t, t.TempDir())
	early, err := newServerMode(modelPath, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(early.handler())
	defer ts.Close()

	lines := `{"num": [0.2, [1, 2, 3]]}
{"num": [9.2, [12, 13, 14]]}
`
	res, err := http.Post(ts.URL+"/classify/stream", "application/x-ndjson", strings.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	var got []modelio.StreamResult
	dec := json.NewDecoder(res.Body)
	for dec.More() {
		var ln modelio.StreamResult
		if err := dec.Decode(&ln); err != nil {
			t.Fatal(err)
		}
		got = append(got, ln)
	}
	if len(got) != 2 {
		t.Fatalf("%d stream lines, want 2", len(got))
	}
	want := []string{"lo", "hi"}
	for i, sr := range got {
		if sr.Error != "" || sr.Class != want[i] {
			t.Fatalf("line %d: %+v, want class %q", i+1, sr, want[i])
		}
		if sr.MembersEvaluated < 1 {
			t.Fatalf("line %d: membersEvaluated = %d", i+1, sr.MembersEvaluated)
		}
		if sr.Dist != nil {
			t.Fatalf("line %d: early-exit stream carried a distribution", i+1)
		}
	}
}

// TestEarlyExitRequiresEnsemble: startup and hot reload must both refuse a
// single-tree model in -early-exit mode (a tree has nothing to stage), the
// reload failure leaving the ensemble serving.
func TestEarlyExitRequiresEnsemble(t *testing.T) {
	treePath := trainModel(t)
	if _, err := newServerMode(treePath, 1, true); err == nil {
		t.Fatal("early-exit server accepted a single-tree model")
	} else if !strings.Contains(err.Error(), "requires an ensemble") {
		t.Fatalf("error %q does not explain the early-exit requirement", err)
	}

	dir := t.TempDir()
	modelPath := trainBoostedModel(t, dir)
	s, err := newServerMode(modelPath, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	treeBlob, err := os.ReadFile(treePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(modelPath, treeBlob, 0o644); err != nil {
		t.Fatal(err)
	}
	res := postJSON(t, ts.URL+"/reload", "")
	res.Body.Close()
	if res.StatusCode != http.StatusInternalServerError {
		t.Fatalf("reload to a tree in early-exit mode returned %d", res.StatusCode)
	}
	// The previous (boosted) generation must still serve.
	cres := postJSON(t, ts.URL+"/classify", `{"num": [0.2, [1, 2, 3]]}`)
	var out struct {
		Class string `json:"class"`
	}
	decodeBody(t, cres, http.StatusOK, &out)
	if out.Class != "lo" {
		t.Fatalf("post-failed-reload classify = %q", out.Class)
	}
}

// TestMetricsLatencyHistogram: every served request must land in the
// endpoint's latency histogram, and the histogram must validate and agree
// with the request count.
func TestMetricsLatencyHistogram(t *testing.T) {
	s, err := newServer(trainModel(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	const n = 7
	for i := 0; i < n; i++ {
		res := postJSON(t, ts.URL+"/classify", `{"num": [0.2, [1, 2, 3]]}`)
		res.Body.Close()
	}
	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mtr struct {
		Endpoints struct {
			Classify struct {
				Requests int64             `json:"requests"`
				Latency  *latency.Snapshot `json:"latency"`
			} `json:"classify"`
		} `json:"endpoints"`
	}
	decodeBody(t, res, http.StatusOK, &mtr)
	ep := mtr.Endpoints.Classify
	if ep.Requests != n {
		t.Fatalf("classify requests = %d, want %d", ep.Requests, n)
	}
	if ep.Latency == nil {
		t.Fatal("classify metrics carry no latency histogram")
	}
	if err := ep.Latency.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := ep.Latency.Total(); got != n {
		t.Fatalf("latency histogram total = %d, want %d", got, n)
	}
	if _, _, ok := ep.Latency.PercentileBounds(0.95); !ok {
		t.Fatal("histogram produced no p95 bounds")
	}
}
