package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"udt/internal/modelio"
)

// toBinary converts a JSON model file into a binary container next to it.
func toBinary(t *testing.T, jsonPath, binPath string) {
	t.Helper()
	m, err := modelio.Load(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := modelio.EncodeBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(binPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestServeBinaryModel: the server loads a binary container transparently
// (sniffed, never by file name), serves byte-identical classifications to
// the JSON-loaded model, and reports the container format in /healthz.
func TestServeBinaryModel(t *testing.T) {
	dir := t.TempDir()
	jsonPath := trainForestModel(t, dir, 7)
	binPath := filepath.Join(dir, "forest.bin")
	toBinary(t, jsonPath, binPath)

	js, err := newServer(jsonPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := newServer(binPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	jts := httptest.NewServer(js.handler())
	defer jts.Close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	bodies := []string{
		`{"num": [0.2, [1, 2, 3]]}`,
		`{"num": [9.3, [12, 13, 14]]}`,
		`{"num": [null, [2, 3, 4]]}`,
	}
	for _, body := range bodies {
		var want, got struct {
			Class string             `json:"class"`
			Dist  map[string]float64 `json:"dist"`
		}
		decodeBody(t, postJSON(t, jts.URL+"/classify", body), http.StatusOK, &want)
		decodeBody(t, postJSON(t, ts.URL+"/classify", body), http.StatusOK, &got)
		if got.Class != want.Class {
			t.Fatalf("%s: binary server says %q, JSON server %q", body, got.Class, want.Class)
		}
		for c, p := range want.Dist {
			if got.Dist[c] != p {
				t.Fatalf("%s: binary dist %v, JSON dist %v", body, got.Dist, want.Dist)
			}
		}
	}

	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Container string `json:"container"`
		Format    string `json:"format"`
		Trees     int    `json:"trees"`
		Nodes     int    `json:"nodes"`
	}
	decodeBody(t, res, http.StatusOK, &health)
	if health.Container != "binary" || health.Format != "forest" || health.Trees != 7 || health.Nodes <= 0 {
		t.Fatalf("healthz = %+v", health)
	}

	res, err = http.Get(jts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, res, http.StatusOK, &health)
	if health.Container != "json" {
		t.Fatalf("JSON server reports container %q", health.Container)
	}
}

// TestServeBinaryTreeModel: a binary single-tree container serves and
// reports tree metadata without a resident pointer tree.
func TestServeBinaryTreeModel(t *testing.T) {
	dir := t.TempDir()
	jsonPath := trainModel(t)
	binPath := filepath.Join(dir, "tree.bin")
	toBinary(t, jsonPath, binPath)

	s, err := newServer(binPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	var got struct {
		Class string `json:"class"`
	}
	decodeBody(t, postJSON(t, ts.URL+"/classify", `{"num": [0.2, [1, 2, 3]]}`), http.StatusOK, &got)
	if got.Class != "lo" {
		t.Fatalf("class %q, want lo", got.Class)
	}
	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Container string `json:"container"`
		Format    string `json:"format"`
		Nodes     int    `json:"nodes"`
	}
	decodeBody(t, res, http.StatusOK, &health)
	if health.Container != "binary" || health.Format != "tree" || health.Nodes <= 0 {
		t.Fatalf("healthz = %+v", health)
	}
}

// replaceFile atomically replaces dst with a copy of src: write to a temp
// file in the same directory, then rename over dst. This is the mandatory
// deploy contract for a file the server may have mmap'd — truncating a
// mapped file in place (as plain copyFile would) yields SIGBUS in every
// request still reading the old mapping; rename leaves the old inode alive
// until its last mapping is released.
func replaceFile(t *testing.T, src, dst string) {
	t.Helper()
	blob, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	tmp := dst + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryHotReloadUnderTraffic: reloads that swap between binary and JSON
// containers while classification traffic flows must never fail a request or
// change an answer — in-flight requests finish on the mapping they started
// with, and retired mappings are released only after their last request
// drains (the race detector polices the unmap ordering). Deploys go through
// replaceFile's atomic rename, the contract for replacing a mapped file.
func TestBinaryHotReloadUnderTraffic(t *testing.T) {
	dir := t.TempDir()
	jsonPath := trainForestModel(t, dir, 5)
	binPath := filepath.Join(dir, "forest.bin")
	toBinary(t, jsonPath, binPath)
	modelPath := filepath.Join(dir, "model.live")
	replaceFile(t, binPath, modelPath)

	s, err := newServer(modelPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	stop := make(chan struct{})
	errs := make(chan error, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := http.Post(ts.URL+"/classify", "application/json",
					bytes.NewReader([]byte(`{"num": [9.2, [12, 13, 14]]}`)))
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				var got struct {
					Class string `json:"class"`
				}
				err = json.NewDecoder(res.Body).Decode(&got)
				res.Body.Close()
				if err != nil || res.StatusCode != http.StatusOK || got.Class != "hi" {
					select {
					case errs <- fmt.Errorf("status %d class %q err %v", res.StatusCode, got.Class, err):
					default:
					}
					return
				}
			}
		}()
	}

	// Alternate binary -> json -> binary -> ... under traffic.
	for i := 0; i < 6; i++ {
		src := binPath
		if i%2 == 0 {
			src = jsonPath
		}
		replaceFile(t, src, modelPath)
		var rl struct {
			Status string `json:"status"`
		}
		decodeBody(t, postJSON(t, ts.URL+"/reload", `{}`), http.StatusOK, &rl)
		if rl.Status != "reloaded" {
			t.Fatalf("reload %d: %+v", i, rl)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("classification failed during binary reloads: %v", err)
	default:
	}

	// Final state: the binary container is serving again.
	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Container  string `json:"container"`
		Generation int64  `json:"generation"`
	}
	decodeBody(t, res, http.StatusOK, &health)
	if health.Container != "binary" || health.Generation != 7 {
		t.Fatalf("after reloads healthz = %+v", health)
	}
}

// TestClassifyStreamGoldenBinary pins /classify/stream served from a binary
// container to the same shared golden stream the JSON-served and CLI paths
// pin to: converting the model to the mmap format must not move a single
// output byte.
func TestClassifyStreamGoldenBinary(t *testing.T) {
	fixtures := "../../testdata/stream"
	binPath := filepath.Join(t.TempDir(), "model.udt")
	toBinary(t, fixtures+"/model.json", binPath)
	s, err := newServer(binPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	input, err := os.Open(fixtures + "/input.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer input.Close()
	res, err := http.Post(ts.URL+"/classify/stream", ndjsonType, input)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(fixtures + "/golden.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(golden) {
		t.Fatalf("binary-served /classify/stream diverges from the golden stream.\ngot:\n%swant:\n%s", body, golden)
	}
}
