// Command udtserve serves a trained uncertain-decision-tree model over HTTP.
// It loads the model.json written by "udtree train", compiles it into the
// flat-array inference engine, and classifies tuples from JSON requests in
// batches.
//
// Usage:
//
//	udtserve -model model.json [-addr :8080] [-workers N]
//
// Endpoints:
//
//	POST /classify — classify one tuple or a batch.
//	GET  /healthz  — liveness plus model metadata.
//
// A tuple is encoded as {"num": [...], "cat": [...]} with one entry per
// model attribute, in model order. Numeric entries are a number (a point
// value), an array of numbers (raw repeated measurements, equal mass), an
// object {"xs": [...], "masses": [...]} (an explicit sampled pdf), or null
// (missing). Categorical entries are a domain value string, an array of
// per-value masses, or null (missing). A batch request wraps tuples in
// {"tuples": [...]}; the response mirrors the shape of the request.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"udt"
	"udt/internal/cliutil"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "udtserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("udtserve", flag.ExitOnError)
	model := fs.String("model", "", "model file written by udtree train (required)")
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", runtime.NumCPU(), "concurrent classification workers per batch (>= 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliutil.RequireString("-model", *model); err != nil {
		return err
	}
	if err := cliutil.CheckPositive("-workers", *workers); err != nil {
		return err
	}
	s, err := newServer(*model, *workers)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("udtserve: %s (%d nodes, %d classes) on %s, workers=%d\n",
		*model, s.compiled.NumNodes(), len(s.compiled.Classes), ln.Addr(), *workers)
	srv := &http.Server{Handler: s.handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, drain in-flight requests.
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return err
		}
		fmt.Println("udtserve: shut down")
		return nil
	}
}

// maxBody bounds a request body; a 16 MiB batch is far beyond any sane
// classification request.
const maxBody = 16 << 20

type server struct {
	compiled *udt.Compiled
	model    string
	workers  int
	started  time.Time
}

// newServer loads and compiles the model file.
func newServer(modelPath string, workers int) (*server, error) {
	blob, err := os.ReadFile(modelPath)
	if err != nil {
		return nil, err
	}
	var tree udt.Tree
	if err := json.Unmarshal(blob, &tree); err != nil {
		return nil, fmt.Errorf("parse %s: %w", modelPath, err)
	}
	compiled, err := tree.Compile()
	if err != nil {
		return nil, fmt.Errorf("compile %s: %w", modelPath, err)
	}
	return &server{
		compiled: compiled,
		model:    modelPath,
		workers:  workers,
		started:  time.Now(),
	}, nil
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /classify", s.classify)
	mux.HandleFunc("GET /healthz", s.healthz)
	return mux
}

type requestJSON struct {
	Num    []json.RawMessage `json:"num"`
	Cat    []json.RawMessage `json:"cat"`
	Tuples []tupleJSON       `json:"tuples"`
}

type tupleJSON struct {
	Num []json.RawMessage `json:"num"`
	Cat []json.RawMessage `json:"cat"`
}

type resultJSON struct {
	Class string             `json:"class"`
	Dist  map[string]float64 `json:"dist"`
}

func (s *server) classify(w http.ResponseWriter, r *http.Request) {
	var req requestJSON
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	batch := req.Tuples != nil
	if batch && (req.Num != nil || req.Cat != nil) {
		fail(w, http.StatusBadRequest, errors.New(`use either "tuples" or a single "num"/"cat" body, not both`))
		return
	}
	if !batch {
		req.Tuples = []tupleJSON{{Num: req.Num, Cat: req.Cat}}
	}
	tuples := make([]*udt.Tuple, len(req.Tuples))
	for i, tj := range req.Tuples {
		tu, err := s.decodeTuple(tj)
		if err != nil {
			fail(w, http.StatusBadRequest, fmt.Errorf("tuple %d: %w", i, err))
			return
		}
		tuples[i] = tu
	}
	dists := s.compiled.ClassifyBatch(tuples, s.workers)
	results := make([]resultJSON, len(dists))
	for i, dist := range dists {
		best := 0
		for c, p := range dist {
			if p > dist[best] {
				best = c
			}
		}
		m := make(map[string]float64, len(dist))
		for c, p := range dist {
			m[s.compiled.Classes[c]] = p
		}
		results[i] = resultJSON{Class: s.compiled.Classes[best], Dist: m}
	}
	if batch {
		reply(w, map[string]any{"results": results})
		return
	}
	reply(w, results[0])
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	reply(w, map[string]any{
		"status":  "ok",
		"model":   s.model,
		"classes": s.compiled.Classes,
		"nodes":   s.compiled.NumNodes(),
		"uptime":  time.Since(s.started).Round(time.Second).String(),
	})
}

// decodeTuple converts the wire representation into an uncertain tuple
// matching the model schema.
func (s *server) decodeTuple(tj tupleJSON) (*udt.Tuple, error) {
	if len(tj.Num) != len(s.compiled.NumAttrs) {
		return nil, fmt.Errorf("%d numeric values, model has %d numeric attributes", len(tj.Num), len(s.compiled.NumAttrs))
	}
	if len(tj.Cat) != len(s.compiled.CatAttrs) {
		return nil, fmt.Errorf("%d categorical values, model has %d categorical attributes", len(tj.Cat), len(s.compiled.CatAttrs))
	}
	tu := &udt.Tuple{Weight: 1}
	for j, raw := range tj.Num {
		p, err := decodeNum(raw)
		if err != nil {
			return nil, fmt.Errorf("numeric attribute %q: %w", s.compiled.NumAttrs[j].Name, err)
		}
		tu.Num = append(tu.Num, p)
	}
	for j, raw := range tj.Cat {
		d, err := decodeCat(raw, s.compiled.CatAttrs[j].Domain)
		if err != nil {
			return nil, fmt.Errorf("categorical attribute %q: %w", s.compiled.CatAttrs[j].Name, err)
		}
		tu.Cat = append(tu.Cat, d)
	}
	return tu, nil
}

// decodeNum parses one numeric attribute value: null (missing), a number (a
// point), an array of raw measurements, or {"xs", "masses"}.
func decodeNum(raw json.RawMessage) (*udt.PDF, error) {
	if isNull(raw) {
		return nil, nil
	}
	switch firstByte(raw) {
	case '{':
		var obj struct {
			Xs     []float64 `json:"xs"`
			Masses []float64 `json:"masses"`
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&obj); err != nil {
			return nil, err
		}
		return udt.NewPDF(obj.Xs, obj.Masses)
	case '[':
		var obs []float64
		if err := json.Unmarshal(raw, &obs); err != nil {
			return nil, err
		}
		return udt.PDFFromSamples(obs)
	default:
		var v float64
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, err
		}
		return udt.PointPDF(v), nil
	}
}

// decodeCat parses one categorical attribute value: null (missing), a
// domain value string, or an array of per-value masses.
func decodeCat(raw json.RawMessage, domain []string) (udt.CatDist, error) {
	if isNull(raw) {
		return nil, nil
	}
	if firstByte(raw) == '[' {
		var masses []float64
		if err := json.Unmarshal(raw, &masses); err != nil {
			return nil, err
		}
		if len(masses) != len(domain) {
			return nil, fmt.Errorf("%d masses, domain has %d values", len(masses), len(domain))
		}
		d := udt.CatDist(masses)
		if err := d.Normalize(); err != nil {
			return nil, err
		}
		return d, nil
	}
	var v string
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	for i, name := range domain {
		if name == v {
			return udt.NewCatPoint(i, len(domain)), nil
		}
	}
	return nil, fmt.Errorf("value %q not in domain %v", v, domain)
}

func isNull(raw json.RawMessage) bool {
	return len(raw) == 0 || string(raw) == "null"
}

func firstByte(raw json.RawMessage) byte {
	for _, b := range raw {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		}
		return b
	}
	return 0
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already gone; nothing left to do but log.
		fmt.Fprintln(os.Stderr, "udtserve: encode response:", err)
	}
}

func fail(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
