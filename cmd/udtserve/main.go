// Command udtserve serves a trained uncertain-decision-tree model over HTTP.
// It loads the model.json written by "udtree train" — a legacy single-tree
// document or the versioned forest container of "udtree train -forest" —
// compiles it into the flat-array inference engine, and classifies tuples
// from JSON requests in batches.
//
// Usage:
//
//	udtserve -model model.json [-addr :8080] [-workers N]
//	         [-read-timeout 10s] [-write-timeout 30s]
//
// Endpoints:
//
//	POST /classify — classify one tuple or a batch.
//	POST /reload   — re-read the model file and swap it in atomically;
//	                 in-flight requests finish on the model they started with.
//	GET  /healthz  — liveness plus active model metadata (format, generation,
//	                 tree count and out-of-bag stats for forests).
//	GET  /metrics  — request counts, error counts, per-endpoint latency and a
//	                 batch-size histogram, all plain atomic counters.
//
// A tuple is encoded as {"num": [...], "cat": [...]} with one entry per
// model attribute, in model order. Numeric entries are a number (a point
// value), an array of numbers (raw repeated measurements, equal mass), an
// object {"xs": [...], "masses": [...]} (an explicit sampled pdf), or null
// (missing). Categorical entries are a domain value string, an array of
// per-value masses, or null (missing). A batch request wraps tuples in
// {"tuples": [...]}; the response mirrors the shape of the request.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/bits"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"udt"
	"udt/internal/cliutil"
	"udt/internal/eval"
	"udt/internal/forest"
	"udt/internal/modelio"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "udtserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("udtserve", flag.ExitOnError)
	model := fs.String("model", "", "model file written by udtree train (required)")
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", runtime.NumCPU(), "concurrent classification workers per batch (>= 1)")
	readTimeout := fs.Duration("read-timeout", 10*time.Second, "HTTP server read timeout")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second, "HTTP server write timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliutil.RequireString("-model", *model); err != nil {
		return err
	}
	if err := cliutil.CheckPositive("-workers", *workers); err != nil {
		return err
	}
	if *readTimeout <= 0 || *writeTimeout <= 0 {
		return errors.New("-read-timeout and -write-timeout must be positive")
	}
	s, err := newServer(*model, *workers)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("udtserve: %s [%s] on %s, workers=%d\n",
		*model, s.active.Load().model.Describe(), ln.Addr(), *workers)
	srv := &http.Server{
		Handler:      s.handler(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, drain in-flight requests.
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return err
		}
		fmt.Println("udtserve: shut down")
		return nil
	}
}

// maxBody bounds a request body; a 16 MiB batch is far beyond any sane
// classification request.
const maxBody = 16 << 20

// activeModel is one loaded model plus its serving metadata. The server
// publishes it through an atomic pointer, so /reload swaps models without
// locks and requests already running keep the instance they loaded.
type activeModel struct {
	model      modelio.Model
	generation int64 // 1 at startup, +1 per successful reload
	loadedAt   time.Time
}

type server struct {
	modelPath  string
	workers    int
	started    time.Time
	reloadMu   sync.Mutex // serialises reloads: file read + generation + swap
	generation atomic.Int64
	active     atomic.Pointer[activeModel]
	mtr        metrics
}

// newServer loads and compiles the model file.
func newServer(modelPath string, workers int) (*server, error) {
	s := &server{
		modelPath: modelPath,
		workers:   workers,
		started:   time.Now(),
	}
	am, err := s.loadModel()
	if err != nil {
		return nil, err
	}
	s.active.Store(am)
	return s, nil
}

// loadModel reads the model file and stamps the next generation number.
func (s *server) loadModel() (*activeModel, error) {
	m, err := modelio.Load(s.modelPath)
	if err != nil {
		return nil, err
	}
	return &activeModel{
		model:      m,
		generation: s.generation.Add(1),
		loadedAt:   time.Now(),
	}, nil
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /classify", s.instrument(&s.mtr.classify, s.classify))
	mux.HandleFunc("POST /reload", s.instrument(&s.mtr.reload, s.reload))
	mux.HandleFunc("GET /healthz", s.instrument(&s.mtr.healthz, s.healthz))
	mux.HandleFunc("GET /metrics", s.instrument(&s.mtr.metricsEP, s.metricsHandler))
	return mux
}

type requestJSON struct {
	Num    []json.RawMessage `json:"num"`
	Cat    []json.RawMessage `json:"cat"`
	Tuples []tupleJSON       `json:"tuples"`
}

type tupleJSON struct {
	Num []json.RawMessage `json:"num"`
	Cat []json.RawMessage `json:"cat"`
}

type resultJSON struct {
	Class string             `json:"class"`
	Dist  map[string]float64 `json:"dist"`
}

func (s *server) classify(w http.ResponseWriter, r *http.Request) {
	// One load: the whole request is served by this model instance even if
	// a concurrent /reload swaps the pointer mid-flight.
	am := s.active.Load()
	classes, numAttrs, catAttrs := am.model.Schema()

	var req requestJSON
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	batch := req.Tuples != nil
	if batch && (req.Num != nil || req.Cat != nil) {
		fail(w, http.StatusBadRequest, errors.New(`use either "tuples" or a single "num"/"cat" body, not both`))
		return
	}
	if !batch {
		req.Tuples = []tupleJSON{{Num: req.Num, Cat: req.Cat}}
	}
	tuples := make([]*udt.Tuple, len(req.Tuples))
	for i, tj := range req.Tuples {
		tu, err := modelio.DecodeTuple(tj.Num, tj.Cat, numAttrs, catAttrs)
		if err != nil {
			fail(w, http.StatusBadRequest, fmt.Errorf("tuple %d: %w", i, err))
			return
		}
		tuples[i] = tu
	}
	s.mtr.observeBatch(len(tuples))
	dists := am.model.ClassifyBatch(tuples, s.workers)
	results := make([]resultJSON, len(dists))
	for i, dist := range dists {
		m := make(map[string]float64, len(dist))
		for c, p := range dist {
			m[classes[c]] = p
		}
		results[i] = resultJSON{Class: classes[eval.Argmax(dist)], Dist: m}
	}
	if batch {
		reply(w, map[string]any{"results": results})
		return
	}
	reply(w, results[0])
}

// reload re-reads the model file and swaps it in atomically. On failure the
// previous model keeps serving. Reloads are serialised so a slow file read
// can never overwrite a newer model with an older one (generation moves
// strictly forward).
func (s *server) reload(w http.ResponseWriter, r *http.Request) {
	s.reloadMu.Lock()
	am, err := s.loadModel()
	if err != nil {
		s.reloadMu.Unlock()
		fail(w, http.StatusInternalServerError, fmt.Errorf("reload: %w", err))
		return
	}
	s.active.Store(am)
	s.reloadMu.Unlock()
	reply(w, map[string]any{
		"status":      "reloaded",
		"model":       s.modelPath,
		"generation":  am.generation,
		"description": am.model.Describe(),
	})
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	am := s.active.Load()
	classes, _, _ := am.model.Schema()
	resp := map[string]any{
		"status":      "ok",
		"model":       s.modelPath,
		"description": am.model.Describe(),
		"generation":  am.generation,
		"loadedAt":    am.loadedAt.UTC().Format(time.RFC3339),
		"classes":     classes,
		"uptime":      time.Since(s.started).Round(time.Second).String(),
	}
	switch m := am.model.(type) {
	case *forest.Forest:
		resp["format"] = "forest"
		resp["formatVersion"] = forest.Version
		resp["trees"] = m.NumTrees()
		resp["nodes"] = m.Stats().Nodes
		if m.OOB.Evaluated > 0 {
			resp["oob"] = m.OOB
		}
	case *modelio.TreeModel:
		resp["format"] = "tree"
		resp["nodes"] = m.Tree.Stats.Nodes
	}
	reply(w, resp)
}

// --- metrics -------------------------------------------------------------

// endpointMetrics counts one endpoint's traffic with plain atomics.
type endpointMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64 // responses with status >= 400
	nanos    atomic.Int64 // total handler latency
}

func (e *endpointMetrics) snapshot() map[string]any {
	n := e.requests.Load()
	out := map[string]any{
		"requests": n,
		"errors":   e.errors.Load(),
	}
	if n > 0 {
		total := time.Duration(e.nanos.Load())
		out["totalLatency"] = total.String()
		out["avgLatency"] = (total / time.Duration(n)).String()
	}
	return out
}

// batchBuckets is the number of power-of-two batch-size histogram buckets:
// 1, 2, 3-4, 5-8, ..., the last bucket collecting everything beyond 2^13.
const batchBuckets = 15

type metrics struct {
	classify  endpointMetrics
	reload    endpointMetrics
	healthz   endpointMetrics
	metricsEP endpointMetrics
	tuples    atomic.Int64
	batch     [batchBuckets]atomic.Int64
}

// observeBatch records one classify call of n tuples.
func (m *metrics) observeBatch(n int) {
	if n <= 0 {
		return
	}
	m.tuples.Add(int64(n))
	b := bits.Len(uint(n - 1)) // 1→0, 2→1, 3-4→2, 5-8→3, ...
	if b >= batchBuckets {
		b = batchBuckets - 1
	}
	m.batch[b].Add(1)
}

// bucketLabel renders histogram bucket b's tuple-count range.
func bucketLabel(b int) string {
	if b == 0 {
		return "1"
	}
	if b == batchBuckets-1 {
		return fmt.Sprintf("%d+", (1<<(b-1))+1)
	}
	lo, hi := (1<<(b-1))+1, 1<<b
	if lo == hi {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("%d-%d", lo, hi)
}

func (s *server) metricsHandler(w http.ResponseWriter, r *http.Request) {
	hist := map[string]int64{}
	for b := range s.mtr.batch {
		if n := s.mtr.batch[b].Load(); n > 0 {
			hist[bucketLabel(b)] = n
		}
	}
	reply(w, map[string]any{
		"uptime":           time.Since(s.started).Round(time.Second).String(),
		"generation":       s.active.Load().generation,
		"tuplesClassified": s.mtr.tuples.Load(),
		"batchSizes":       hist,
		"endpoints": map[string]any{
			"classify": s.mtr.classify.snapshot(),
			"reload":   s.mtr.reload.snapshot(),
			"healthz":  s.mtr.healthz.snapshot(),
			"metrics":  s.mtr.metricsEP.snapshot(),
		},
	})
}

// statusRecorder captures the response status for error counting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request/error/latency accounting.
func (s *server) instrument(em *endpointMetrics, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		em.requests.Add(1)
		em.nanos.Add(time.Since(start).Nanoseconds())
		if rec.status >= 400 {
			em.errors.Add(1)
		}
	}
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already gone; nothing left to do but log.
		fmt.Fprintln(os.Stderr, "udtserve: encode response:", err)
	}
}

func fail(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
