// Command udtserve serves a trained uncertain-decision-tree model over HTTP.
// It loads the model.json written by "udtree train" — a legacy single-tree
// document or the versioned forest container of "udtree train -forest" —
// compiles it into the flat-array inference engine, and classifies tuples
// from JSON requests in batches.
//
// Usage:
//
//	udtserve -model model.json [-addr :8080] [-workers N]
//	         [-read-timeout 10s] [-write-timeout 30s] [-watch 0s]
//	         [-max-streams 0] [-early-exit]
//
// -early-exit (ensemble models only) switches prediction to staged early
// exit: members are evaluated in descending vote-weight order and evaluation
// stops once the leading class can no longer be overtaken. Predicted classes
// are byte-identical to full evaluation; responses carry membersEvaluated
// instead of a distribution, and /metrics aggregates the counts.
//
// Endpoints:
//
//	POST /classify        — classify one tuple or a batch.
//	POST /classify/stream — NDJSON: one tuple document per request line, one
//	                        result (or per-line error) object per response
//	                        line, decoded, classified and flushed line by
//	                        line (full duplex), so arbitrarily long streams
//	                        run in constant memory. A malformed line yields
//	                        an error object and the stream continues.
//	                        -read-timeout/-write-timeout bound per-line
//	                        idleness, not total stream duration (deadlines
//	                        roll forward with each answered line).
//	                        -max-streams N caps concurrent streams: excess
//	                        requests are refused with 503 + Retry-After so
//	                        hostile stream floods cannot wedge the worker
//	                        pool.
//	POST /reload          — re-read the model file and swap it in atomically;
//	                        in-flight requests finish on the model they
//	                        started with.
//	GET  /healthz         — liveness plus active model metadata (format,
//	                        generation, tree count, OOB stats for forests).
//	GET  /metrics         — request counts, error counts, per-endpoint
//	                        latency (totals plus a power-of-two histogram for
//	                        percentile bounds), a batch-size histogram,
//	                        NDJSON line counters and early-exit counters, all
//	                        plain atomic state.
//
// -watch polls the model file's mtime at the given interval and hot-reloads
// through the same serialised path as POST /reload, closing the deploy loop
// without an operator call.
//
// Every response carries an X-Request-Id header — echoed from the request
// when present, generated otherwise — and error bodies repeat it as
// "requestId". The Accept header is honoured: a request that cannot accept
// the endpoint's content type (application/json, or application/x-ndjson for
// the stream endpoint) is refused with 406.
//
// A tuple is encoded as {"num": [...], "cat": [...]} with one entry per
// model attribute, in model order. Numeric entries are a number (a point
// value), an array of numbers (raw repeated measurements, equal mass), an
// object {"xs": [...], "masses": [...]} (an explicit sampled pdf), or null
// (missing). Categorical entries are a domain value string, an array of
// per-value masses, or null (missing). A batch request wraps tuples in
// {"tuples": [...]}; the response mirrors the shape of the request.
package main

import (
	"bufio"
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/bits"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"udt"
	"udt/internal/cliutil"
	"udt/internal/eval"
	"udt/internal/forest"
	"udt/internal/latency"
	"udt/internal/modelio"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "udtserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("udtserve", flag.ExitOnError)
	model := fs.String("model", "", "model file written by udtree train (required)")
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", runtime.NumCPU(), "concurrent classification workers per batch (>= 1)")
	readTimeout := fs.Duration("read-timeout", 10*time.Second, "HTTP server read timeout")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second, "HTTP server write timeout")
	watch := fs.Duration("watch", 0, "poll the model file at this interval and hot-reload on change (0 = disabled)")
	maxStreams := fs.Int("max-streams", 0, "max concurrent /classify/stream requests; excess get 503 + Retry-After (0 = unlimited)")
	earlyExit := fs.Bool("early-exit", false, "predict with staged early exit (ensemble models only): byte-identical classes, no distributions, membersEvaluated reported")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliutil.RequireString("-model", *model); err != nil {
		return err
	}
	if err := cliutil.CheckPositive("-workers", *workers); err != nil {
		return err
	}
	if *readTimeout <= 0 || *writeTimeout <= 0 {
		return errors.New("-read-timeout and -write-timeout must be positive")
	}
	if *watch < 0 {
		return errors.New("-watch must be >= 0")
	}
	if *maxStreams < 0 {
		return errors.New("-max-streams must be >= 0")
	}
	s, err := newServerMode(*model, *workers, *earlyExit)
	if err != nil {
		return err
	}
	s.streamReadTimeout = *readTimeout
	s.streamWriteTimeout = *writeTimeout
	s.maxStreams = *maxStreams
	if *watch > 0 {
		go s.watchLoop(ctx, *watch)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("udtserve: %s [%s] on %s, workers=%d\n",
		*model, s.active.Load().model.Describe(), ln.Addr(), *workers)
	srv := &http.Server{
		Handler:      s.handler(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, drain in-flight requests.
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return err
		}
		fmt.Println("udtserve: shut down")
		return nil
	}
}

// maxBody bounds a request body; a 16 MiB batch is far beyond any sane
// classification request.
const maxBody = 16 << 20

// activeModel is one loaded model plus its serving metadata. The server
// publishes it through an atomic pointer, so /reload swaps models without
// locks and requests already running keep the instance they loaded.
type activeModel struct {
	model      modelio.Model
	generation int64 // 1 at startup, +1 per successful reload
	loadedAt   time.Time
}

type server struct {
	modelPath  string
	workers    int
	started    time.Time
	reloadMu   sync.Mutex // serialises reloads: file read + generation + swap
	generation atomic.Int64
	active     atomic.Pointer[activeModel]
	lastStamp  atomic.Pointer[fileStamp] // identity of the model file last loaded
	mtr        metrics

	// Per-line deadline extensions for the stream endpoint (the server's
	// global read/write timeouts are per-request, which would kill a long
	// interactive stream mid-flight).
	streamReadTimeout  time.Duration
	streamWriteTimeout time.Duration

	// Stream admission control: at most maxStreams concurrent
	// /classify/stream requests when positive (0 = unlimited); excess
	// requests get 503 + Retry-After instead of a worker-pool slot.
	maxStreams    int
	activeStreams atomic.Int64

	// earlyExit switches prediction to staged early exit (-early-exit):
	// classes stay byte-identical to full evaluation, distributions are not
	// produced, and membersEvaluated counters flow to clients and /metrics.
	// Set before the first loadModel and immutable afterwards.
	earlyExit bool
}

// newServer loads and compiles the model file.
func newServer(modelPath string, workers int) (*server, error) {
	return newServerMode(modelPath, workers, false)
}

// newServerMode is newServer plus the early-exit prediction mode.
func newServerMode(modelPath string, workers int, earlyExit bool) (*server, error) {
	s := &server{
		modelPath:          modelPath,
		workers:            workers,
		started:            time.Now(),
		streamReadTimeout:  10 * time.Second,
		streamWriteTimeout: 30 * time.Second,
		earlyExit:          earlyExit,
	}
	am, err := s.loadModel()
	if err != nil {
		return nil, err
	}
	s.active.Store(am)
	return s, nil
}

// fileStamp identifies a version of the model file for -watch change
// detection. Size is compared alongside mtime because coarse filesystem
// clocks (1s on some mounts) can give two quick deploys the same mtime.
type fileStamp struct {
	modNanos int64
	size     int64
}

// stampOf stats the model file; a stat failure yields the zero stamp, which
// never equals a real one.
func (s *server) stampOf() fileStamp {
	fi, err := os.Stat(s.modelPath)
	if err != nil {
		return fileStamp{}
	}
	return fileStamp{modNanos: fi.ModTime().UnixNano(), size: fi.Size()}
}

// loadModel reads the model file and stamps the next generation number,
// recording the file's identity so the -watch poller knows what version is
// serving. The stat happens BEFORE the read: if the file is replaced
// between the two calls the recorded stamp is older than the loaded
// content, so the poller's worst case is one redundant reload — never a
// newer file mistaken for already-loaded.
func (s *server) loadModel() (*activeModel, error) {
	stamp := s.stampOf()
	m, err := modelio.Load(s.modelPath)
	if err != nil {
		return nil, err
	}
	// Checked on every load, not just startup: a hot reload swapping in a
	// single-tree model would otherwise crash the early-exit serving path.
	// The failed reload leaves the previous (staged) model serving.
	if s.earlyExit {
		if _, ok := m.(modelio.Staged); !ok {
			return nil, fmt.Errorf("%s: -early-exit requires an ensemble model, got %s", s.modelPath, m.Describe())
		}
	}
	s.lastStamp.Store(&stamp)
	return &activeModel{
		model:      m,
		generation: s.generation.Add(1),
		loadedAt:   time.Now(),
	}, nil
}

// doReload is the shared hot-reload path of POST /reload and the -watch
// poller: re-read the model file and swap it in atomically. On failure the
// previous model keeps serving. Reloads are serialised so a slow file read
// can never overwrite a newer model with an older one (generation moves
// strictly forward).
func (s *server) doReload() (*activeModel, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	am, err := s.loadModel()
	if err != nil {
		return nil, err
	}
	s.active.Store(am)
	return am, nil
}

// watchLoop polls the model file's identity (mtime + size) and hot-reloads
// on change until the context ends. A failed reload leaves the old model
// serving and retries on the next change (a broken file that stays broken
// is reported once per write, not once per tick).
func (s *server) watchLoop(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		stamp := s.stampOf()
		if stamp == (fileStamp{}) || stamp == *s.lastStamp.Load() {
			continue
		}
		// Remember the stamp that triggered this attempt even if the load
		// fails, so a persistently broken file is not re-tried every tick.
		s.lastStamp.Store(&stamp)
		am, err := s.doReload()
		if err != nil {
			s.mtr.watchErrors.Add(1)
			fmt.Fprintf(os.Stderr, "udtserve: watch reload: %v\n", err)
			continue
		}
		s.mtr.watchReloads.Add(1)
		fmt.Printf("udtserve: watch reloaded %s [%s] generation %d\n",
			s.modelPath, am.model.Describe(), am.generation)
	}
}

// Content types the server produces.
const (
	jsonType   = "application/json"
	ndjsonType = "application/x-ndjson"
)

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /classify", s.instrument(&s.mtr.classify, jsonType, s.classify))
	mux.HandleFunc("POST /classify/stream", s.instrument(&s.mtr.stream, ndjsonType, s.classifyStream))
	mux.HandleFunc("POST /reload", s.instrument(&s.mtr.reload, jsonType, s.reload))
	mux.HandleFunc("GET /healthz", s.instrument(&s.mtr.healthz, jsonType, s.healthz))
	mux.HandleFunc("GET /metrics", s.instrument(&s.mtr.metricsEP, jsonType, s.metricsHandler))
	return mux
}

type requestJSON struct {
	Num    []json.RawMessage   `json:"num"`
	Cat    []json.RawMessage   `json:"cat"`
	Tuples []modelio.WireTuple `json:"tuples"`
}

type resultJSON struct {
	Class string             `json:"class"`
	Dist  map[string]float64 `json:"dist,omitempty"`
	// MembersEvaluated is set only in -early-exit mode: the ensemble members
	// evaluated before the argmax settled (early exit produces no
	// distribution — it stops before the full one exists).
	MembersEvaluated int `json:"membersEvaluated,omitempty"`
}

func (s *server) classify(w http.ResponseWriter, r *http.Request) {
	// One load: the whole request is served by this model instance even if
	// a concurrent /reload swaps the pointer mid-flight.
	am := s.active.Load()
	classes, numAttrs, catAttrs := am.model.Schema()

	var req requestJSON
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	batch := req.Tuples != nil
	if batch && (req.Num != nil || req.Cat != nil) {
		fail(w, http.StatusBadRequest, errors.New(`use either "tuples" or a single "num"/"cat" body, not both`))
		return
	}
	if !batch {
		req.Tuples = []modelio.WireTuple{{Num: req.Num, Cat: req.Cat}}
	}
	tuples := make([]*udt.Tuple, len(req.Tuples))
	for i, tj := range req.Tuples {
		tu, err := tj.Decode(numAttrs, catAttrs)
		if err != nil {
			fail(w, http.StatusBadRequest, fmt.Errorf("tuple %d: %w", i, err))
			return
		}
		tuples[i] = tu
	}
	s.mtr.observeBatch(len(tuples))
	var results []resultJSON
	if s.earlyExit {
		// loadModel guarantees every served model is Staged in this mode.
		preds, evaluated := am.model.(modelio.Staged).PredictBatchEarlyExit(tuples, s.workers)
		s.mtr.observeEarlyExit(evaluated)
		results = make([]resultJSON, len(preds))
		for i, p := range preds {
			results[i] = resultJSON{Class: classes[p], MembersEvaluated: evaluated[i]}
		}
	} else {
		dists := am.model.ClassifyBatch(tuples, s.workers)
		results = make([]resultJSON, len(dists))
		for i, dist := range dists {
			m := make(map[string]float64, len(dist))
			for c, p := range dist {
				m[classes[c]] = p
			}
			results[i] = resultJSON{Class: classes[eval.Argmax(dist)], Dist: m}
		}
	}
	if batch {
		reply(w, map[string]any{"results": results})
		return
	}
	reply(w, results[0])
}

// maxStreamLine bounds one NDJSON input line; a single tuple document
// beyond 1 MiB is malformed, not big.
const maxStreamLine = 1 << 20

// classifyStream handles POST /classify/stream: each request line is one
// tuple document, each response line one result object, decoded, classified
// and flushed as it arrives — the whole stream is never resident, so body
// size is unbounded (per line, maxStreamLine applies). A malformed line
// produces an error object on its line and the stream continues; the HTTP
// status is 200 once the first line has been answered, so per-line errors
// are in-band by design. Response lines are modelio.StreamResult documents,
// the same protocol "udtree predict -format ndjson" emits.
//
// When -max-streams is set, at most that many streams run concurrently:
// excess requests are refused immediately with 503 and a Retry-After header
// instead of queueing into the worker pool, so a flood of long-lived streams
// cannot wedge the batch endpoints.
func (s *server) classifyStream(w http.ResponseWriter, r *http.Request) {
	// The active gauge counts every stream, capped or not, so /metrics
	// reports stream load even in the default unlimited configuration.
	n := s.activeStreams.Add(1)
	defer s.activeStreams.Add(-1)
	if s.maxStreams > 0 && n > int64(s.maxStreams) {
		s.mtr.streamRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		fail(w, http.StatusServiceUnavailable,
			fmt.Errorf("stream admission: %d streams already active (cap %d); retry shortly", n-1, s.maxStreams))
		return
	}

	// One load: the whole stream is classified by one model generation even
	// if a reload swaps the pointer mid-stream.
	am := s.active.Load()
	classes, numAttrs, catAttrs := am.model.Schema()

	// HTTP/1.x is half-duplex by default: the first response write closes
	// the request body, so an interactive client that waits for answer N
	// before sending line N+1 would deadlock. This endpoint is full-duplex
	// by design; the error return is ignored because transports that do not
	// support the upgrade (HTTP/2) are full-duplex already.
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex()

	w.Header().Set("Content-Type", ndjsonType)
	enc := json.NewEncoder(w)
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), maxStreamLine)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		out := modelio.StreamResult{Line: line}
		var wt modelio.WireTuple
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&wt); err != nil {
			out.Error = fmt.Sprintf("decode: %v", err)
		} else if dec.More() {
			// Two concatenated documents (or a document followed by junk)
			// must not be half-accepted with the tail silently dropped.
			out.Error = "decode: trailing data after tuple document"
		} else if tu, err := wt.Decode(numAttrs, catAttrs); err != nil {
			out.Error = err.Error()
		} else {
			// Count the tuple but keep the batch-size histogram for
			// /classify callers only: a long stream would otherwise drown
			// the size-1 bucket. Stream volume has its own counters.
			s.mtr.tuples.Add(1)
			if s.earlyExit {
				class, k := am.model.(modelio.Staged).PredictEarlyExit(tu)
				s.mtr.earlyExitPredictions.Add(1)
				s.mtr.earlyExitMembers.Add(int64(k))
				out = modelio.NewStagedResult(line, classes, class, k)
			} else {
				out = modelio.NewStreamResult(line, classes, am.model.Classify(tu))
			}
		}
		s.mtr.streamLines.Add(1)
		if out.Error != "" {
			s.mtr.streamLineErrors.Add(1)
		}
		if err := enc.Encode(out); err != nil {
			return // client went away; nothing to report to
		}
		rc.Flush()
		// The server's -read-timeout/-write-timeout are per-request
		// deadlines, which would cut an interactive stream that simply
		// outlives them; roll both forward per answered line so the
		// timeouts bound idleness, not total stream duration. Errors are
		// ignored: writers that cannot set deadlines (tests, HTTP/2
		// internals) just keep their original ones.
		rc.SetReadDeadline(time.Now().Add(s.streamReadTimeout))
		rc.SetWriteDeadline(time.Now().Add(s.streamWriteTimeout))
	}
	if err := sc.Err(); err != nil {
		// Body read failed mid-stream (oversized line, disconnect): emit a
		// final in-band error object.
		s.mtr.streamLineErrors.Add(1)
		enc.Encode(modelio.StreamResult{Line: line + 1, Error: fmt.Sprintf("read: %v", err)})
	}
}

// reload is the POST /reload handler over the shared doReload path.
func (s *server) reload(w http.ResponseWriter, r *http.Request) {
	am, err := s.doReload()
	if err != nil {
		fail(w, http.StatusInternalServerError, fmt.Errorf("reload: %w", err))
		return
	}
	reply(w, map[string]any{
		"status":      "reloaded",
		"model":       s.modelPath,
		"generation":  am.generation,
		"description": am.model.Describe(),
	})
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	am := s.active.Load()
	classes, _, _ := am.model.Schema()
	resp := map[string]any{
		"status":      "ok",
		"model":       s.modelPath,
		"description": am.model.Describe(),
		"generation":  am.generation,
		"loadedAt":    am.loadedAt.UTC().Format(time.RFC3339),
		"classes":     classes,
		"uptime":      time.Since(s.started).Round(time.Second).String(),
	}
	switch m := am.model.(type) {
	case *forest.Forest:
		resp["format"] = "forest"
		resp["formatVersion"] = forest.Version
		resp["kind"] = m.Kind()
		resp["trees"] = m.NumTrees()
		resp["nodes"] = m.Stats().Nodes
		if m.Kind() == forest.KindBoosted {
			// Uniform bagged weights carry no information; boosted alphas are
			// the model's vote structure, worth surfacing to operators.
			resp["memberWeights"] = m.Weights()
		}
		if m.OOB.Evaluated > 0 {
			resp["oob"] = m.OOB
		}
	case *modelio.TreeModel:
		resp["format"] = "tree"
		resp["nodes"] = m.Tree.Stats.Nodes
	}
	reply(w, resp)
}

// --- metrics -------------------------------------------------------------

// endpointMetrics counts one endpoint's traffic with plain atomics, plus a
// power-of-two latency histogram so operators (and udtload's cross-check)
// get percentile bounds, not just the average.
type endpointMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64 // responses with status >= 400
	nanos    atomic.Int64 // total handler latency
	hist     latency.AtomicHist
}

func (e *endpointMetrics) snapshot() map[string]any {
	n := e.requests.Load()
	out := map[string]any{
		"requests": n,
		"errors":   e.errors.Load(),
	}
	if n > 0 {
		total := time.Duration(e.nanos.Load())
		out["totalLatency"] = total.String()
		out["avgLatency"] = (total / time.Duration(n)).String()
		out["latency"] = e.hist.Snapshot()
	}
	return out
}

// batchBuckets is the number of power-of-two batch-size histogram buckets:
// 1, 2, 3-4, 5-8, ..., the last bucket collecting everything beyond 2^13.
const batchBuckets = 15

type metrics struct {
	classify  endpointMetrics
	stream    endpointMetrics
	reload    endpointMetrics
	healthz   endpointMetrics
	metricsEP endpointMetrics
	tuples    atomic.Int64
	batch     [batchBuckets]atomic.Int64

	streamLines      atomic.Int64 // NDJSON lines answered (results + errors)
	streamLineErrors atomic.Int64 // NDJSON lines answered with an error object
	streamRejected   atomic.Int64 // streams refused by -max-streams admission control
	watchReloads     atomic.Int64 // successful -watch hot reloads
	watchErrors      atomic.Int64 // failed -watch reload attempts

	earlyExitPredictions atomic.Int64 // predictions served in -early-exit mode
	earlyExitMembers     atomic.Int64 // ensemble members evaluated across them
}

// observeEarlyExit records one early-exit batch's members-evaluated counts.
func (m *metrics) observeEarlyExit(evaluated []int) {
	var members int64
	for _, k := range evaluated {
		members += int64(k)
	}
	m.earlyExitPredictions.Add(int64(len(evaluated)))
	m.earlyExitMembers.Add(members)
}

// observeBatch records one classify call of n tuples.
func (m *metrics) observeBatch(n int) {
	if n <= 0 {
		return
	}
	m.tuples.Add(int64(n))
	b := bits.Len(uint(n - 1)) // 1→0, 2→1, 3-4→2, 5-8→3, ...
	if b >= batchBuckets {
		b = batchBuckets - 1
	}
	m.batch[b].Add(1)
}

// bucketLabel renders histogram bucket b's tuple-count range.
func bucketLabel(b int) string {
	if b == 0 {
		return "1"
	}
	if b == batchBuckets-1 {
		return fmt.Sprintf("%d+", (1<<(b-1))+1)
	}
	lo, hi := (1<<(b-1))+1, 1<<b
	if lo == hi {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("%d-%d", lo, hi)
}

func (s *server) metricsHandler(w http.ResponseWriter, r *http.Request) {
	hist := map[string]int64{}
	for b := range s.mtr.batch {
		if n := s.mtr.batch[b].Load(); n > 0 {
			hist[bucketLabel(b)] = n
		}
	}
	reply(w, map[string]any{
		"uptime":           time.Since(s.started).Round(time.Second).String(),
		"generation":       s.active.Load().generation,
		"tuplesClassified": s.mtr.tuples.Load(),
		"batchSizes":       hist,
		"stream": map[string]int64{
			"lines":      s.mtr.streamLines.Load(),
			"lineErrors": s.mtr.streamLineErrors.Load(),
			"active":     s.activeStreams.Load(),
			"rejected":   s.mtr.streamRejected.Load(),
		},
		"watch": map[string]int64{
			"reloads": s.mtr.watchReloads.Load(),
			"errors":  s.mtr.watchErrors.Load(),
		},
		"earlyExit": map[string]any{
			"enabled":          s.earlyExit,
			"predictions":      s.mtr.earlyExitPredictions.Load(),
			"membersEvaluated": s.mtr.earlyExitMembers.Load(),
		},
		"endpoints": map[string]any{
			"classify":       s.mtr.classify.snapshot(),
			"classifyStream": s.mtr.stream.snapshot(),
			"reload":         s.mtr.reload.snapshot(),
			"healthz":        s.mtr.healthz.snapshot(),
			"metrics":        s.mtr.metricsEP.snapshot(),
		},
	})
}

// statusRecorder captures the response status for error counting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so the NDJSON stream endpoint can
// deliver each line as it is classified — without this the responses would
// sit in the server's write buffer until the handler returned.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController, which
// classifyStream uses for EnableFullDuplex and per-line Flush.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument wraps a handler with the per-request plumbing shared by every
// endpoint: an X-Request-Id echoed (or generated) before the handler runs,
// Accept-header negotiation against the endpoint's content type, and
// request/error/latency accounting.
func (s *server) instrument(em *endpointMetrics, ctype string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		w.Header().Set("X-Request-Id", requestID(r))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		if accepts(r.Header.Values("Accept"), ctype) {
			h(rec, r)
		} else {
			fail(rec, http.StatusNotAcceptable,
				fmt.Errorf("Accept %q cannot be satisfied: this endpoint produces %s",
					strings.Join(r.Header.Values("Accept"), ", "), ctype))
		}
		em.requests.Add(1)
		elapsed := time.Since(start)
		em.nanos.Add(elapsed.Nanoseconds())
		em.hist.Observe(elapsed)
		if rec.status >= 400 {
			em.errors.Add(1)
		}
	}
}

// requestID returns the caller-supplied X-Request-Id (bounded to 128 bytes)
// or generates a fresh 64-bit hex ID.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" {
		if len(id) > 128 {
			id = id[:128]
		}
		return id
	}
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return "unavailable"
	}
	return hex.EncodeToString(b[:])
}

// accepts reports whether the request's Accept header lines admit ctype. An
// absent (or blank) header accepts everything. Per RFC 9110 §12.5.1 the
// most specific matching range governs (exact type over "type/*" over
// "*/*"), so an explicit q=0 on the exact type refuses it even when a
// wildcard would admit it. Preference ordering among acceptable types is
// ignored — the server has exactly one representation per endpoint, so only
// acceptable-vs-refused can change the outcome.
func accepts(headers []string, ctype string) bool {
	slash := strings.IndexByte(ctype, '/')
	seen := false
	bestSpec, bestQ := -1, 0.0
	for _, header := range headers {
		if strings.TrimSpace(header) == "" {
			continue
		}
		seen = true
		for _, part := range strings.Split(header, ",") {
			mt := strings.TrimSpace(part)
			q := 1.0
			if i := strings.IndexByte(mt, ';'); i >= 0 {
				q = qvalue(mt[i+1:])
				mt = strings.TrimSpace(mt[:i])
			}
			spec := -1
			switch {
			case strings.EqualFold(mt, ctype):
				spec = 2
			case strings.HasSuffix(mt, "/*") && strings.EqualFold(mt[:len(mt)-2], ctype[:slash]):
				spec = 1
			case mt == "*/*":
				spec = 0
			}
			if spec < 0 {
				continue
			}
			switch {
			case spec > bestSpec:
				bestSpec, bestQ = spec, q
			case spec == bestSpec && q > bestQ:
				// Duplicate ranges at equal specificity: be generous.
				bestQ = q
			}
		}
	}
	return !seen || (bestSpec >= 0 && bestQ > 0)
}

// qvalue extracts the quality weight from a media-range parameter list,
// defaulting to 1 (including for a malformed q, which RFC 9110 leaves
// unspecified — refusing only on an explicit, well-formed q=0).
func qvalue(params string) float64 {
	for _, p := range strings.Split(params, ";") {
		k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
		if ok && strings.EqualFold(strings.TrimSpace(k), "q") {
			if f, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
				return f
			}
			return 1
		}
	}
	return 1
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", jsonType)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already gone; nothing left to do but log.
		fmt.Fprintln(os.Stderr, "udtserve: encode response:", err)
	}
}

// fail writes a JSON error body carrying the request ID stamped by
// instrument, so a client log line and a server metric line correlate.
func fail(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", jsonType)
	w.WriteHeader(code)
	body := map[string]string{"error": err.Error()}
	if id := w.Header().Get("X-Request-Id"); id != "" {
		body["requestId"] = id
	}
	json.NewEncoder(w).Encode(body)
}
