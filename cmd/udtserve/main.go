// Command udtserve serves trained uncertain-decision-tree models over HTTP.
// It loads one model file written by "udtree train" — or a whole registry of
// named models from a directory or manifest — compiles them into the
// flat-array inference engine, and classifies tuples from JSON requests in
// batches.
//
// Usage:
//
//	udtserve -model model.json [-shadow candidate.json] | -models dir-or-manifest
//	         [-addr :8080] [-workers N]
//	         [-read-timeout 10s] [-write-timeout 30s] [-watch 0s]
//	         [-max-streams 0] [-early-exit] [-trace-sample 0]
//	         [-pprof addr] [-version]
//
// -model serves a single model as the registry's "default" entry; -shadow
// optionally attaches a candidate model to it for shadow comparison. -models
// serves many: a directory (one entry per model file, named by basename
// minus extension; an entry named "default" — or a lone entry — backs the
// legacy routes) or a JSON manifest (path ending in .manifest or
// .manifest.json) of the form
//
//	{"models": [{"name": "a", "path": "a.udt", "shadow": "a-next.udt",
//	             "maxStreams": 8, "default": true}, ...]}
//
// with model paths relative to the manifest's directory. Per-model
// maxStreams is a QoS budget layered under the global -max-streams cap.
//
// -early-exit (ensemble models only) switches prediction to staged early
// exit: members are evaluated in descending vote-weight order and evaluation
// stops once the leading class can no longer be overtaken. Predicted classes
// are byte-identical to full evaluation; responses carry membersEvaluated
// instead of a distribution, and /metrics aggregates the counts.
//
// Endpoints:
//
//	POST /classify        — classify one tuple or a batch.
//	POST /classify/stream — NDJSON: one tuple document per request line, one
//	                        result (or per-line error) object per response
//	                        line, decoded, classified and flushed line by
//	                        line (full duplex), so arbitrarily long streams
//	                        run in constant memory. A malformed line yields
//	                        an error object and the stream continues.
//	                        -read-timeout/-write-timeout bound per-line
//	                        idleness, not total stream duration (deadlines
//	                        roll forward with each answered line).
//	                        -max-streams N caps concurrent streams: excess
//	                        requests are refused with 503 + Retry-After so
//	                        hostile stream floods cannot wedge the worker
//	                        pool.
//	POST /reload          — re-read the model file and swap it in atomically;
//	                        in-flight requests finish on the model they
//	                        started with. Binary (mmap-served) models are
//	                        unmapped only after the last such request drains.
//	                        Deploys must replace the model file by atomic
//	                        rename, never in-place truncation: the old file
//	                        may still be mapped (see internal/binfmt.Load).
//	GET  /healthz         — liveness plus active model metadata (format,
//	                        generation, tree count, OOB stats for forests)
//	                        and the registry's model names.
//	GET  /metrics         — request counts, error counts, per-endpoint
//	                        latency (totals plus a power-of-two histogram for
//	                        percentile bounds), a batch-size histogram,
//	                        NDJSON line counters, early-exit counters,
//	                        per-model counters (requests, errors, latency,
//	                        tuples, stream budget, shadow divergence), build
//	                        info, runtime metrics (heap, GC pauses,
//	                        goroutines) and trace-span histograms, all plain
//	                        atomic state. The default view is JSON;
//	                        ?format=prometheus (or an Accept header that
//	                        admits text/plain but not application/json)
//	                        selects the Prometheus text exposition of the
//	                        same counters.
//
// The legacy routes above serve the registry's default entry. Every model is
// additionally served under its name:
//
//	POST   /v1/models/{model}/classify        — as /classify
//	POST   /v1/models/{model}/classify/stream — as /classify/stream
//	POST   /v1/models/{model}/reload          — as /reload
//	GET    /v1/models/{model}/healthz         — as /healthz
//	DELETE /v1/models/{model}                 — evict the model: it leaves
//	                                            the table immediately,
//	                                            in-flight requests drain,
//	                                            the mapping closes after the
//	                                            last one. The default entry
//	                                            cannot be evicted.
//
// A model configured with a shadow serves every request from its primary
// generation and synchronously mirrors classify traffic to the shadow
// (candidate) generation, comparing predicted classes and full
// distributions; divergence counters in /metrics gate promotion. Shadow
// load is real load by design — the mirror is the candidate's dress
// rehearsal.
//
// -trace-sample N traces every Nth request (deterministically by arrival
// order): decode/classify/encode span timings land in per-span /metrics
// histograms and one structured JSON access-log line per sampled request is
// written to stderr. 0 (the default) disables tracing; handlers then pay
// only a nil check.
//
// -pprof addr serves net/http/pprof on a separate listener (never on the
// serving mux), so profiling stays operator-only.
//
// -watch polls every registry entry's model file mtime at the given interval
// and hot-reloads through the same serialised path as POST /reload, closing
// the deploy loop without an operator call. Reload outcomes are logged as
// structured JSON records on stderr.
//
// Every response carries an X-Request-Id header — echoed from the request
// when present, generated otherwise — and error bodies repeat it as
// "requestId". The Accept header is honoured: a request that cannot accept
// the endpoint's content type (application/json, or application/x-ndjson for
// the stream endpoint) is refused with 406.
//
// A tuple is encoded as {"num": [...], "cat": [...]} with one entry per
// model attribute, in model order. Numeric entries are a number (a point
// value), an array of numbers (raw repeated measurements, equal mass), an
// object {"xs": [...], "masses": [...]} (an explicit sampled pdf), or null
// (missing). Categorical entries are a domain value string, an array of
// per-value masses, or null (missing). A batch request wraps tuples in
// {"tuples": [...]}; the response mirrors the shape of the request.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/bits"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"udt"
	"udt/internal/cliutil"
	"udt/internal/core"
	"udt/internal/eval"
	"udt/internal/forest"
	"udt/internal/modelio"
	"udt/internal/obs"
	"udt/internal/registry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "udtserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("udtserve", flag.ExitOnError)
	model := fs.String("model", "", "model file written by udtree train (serves as the default model)")
	models := fs.String("models", "", "model directory or .manifest.json serving many named models (exclusive with -model)")
	shadowPath := fs.String("shadow", "", "candidate model mirrored by the default model's classify traffic (requires -model)")
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", runtime.NumCPU(), "concurrent classification workers per batch (>= 1)")
	readTimeout := fs.Duration("read-timeout", 10*time.Second, "HTTP server read timeout")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second, "HTTP server write timeout")
	watch := fs.Duration("watch", 0, "poll every model file at this interval and hot-reload on change (0 = disabled)")
	maxStreams := fs.Int("max-streams", 0, "max concurrent /classify/stream requests across all models; excess get 503 + Retry-After (0 = unlimited)")
	earlyExit := fs.Bool("early-exit", false, "predict with staged early exit (ensemble models only): byte-identical classes, no distributions, membersEvaluated reported")
	traceSample := fs.Int("trace-sample", 0, "trace every Nth request: span timings into /metrics plus one JSON access-log line on stderr (0 = off)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this separate address (empty = disabled)")
	version := fs.Bool("version", false, "print build info and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(cliutil.VersionString("udtserve"))
		return nil
	}
	if *model == "" && *models == "" {
		return errors.New("-model is required (or -models for a multi-model registry)")
	}
	if *model != "" && *models != "" {
		return errors.New("-model and -models are mutually exclusive")
	}
	if *shadowPath != "" && *model == "" {
		return errors.New("-shadow requires -model (manifests carry per-model shadows)")
	}
	if *traceSample < 0 {
		return errors.New("-trace-sample must be >= 0")
	}
	if err := cliutil.CheckPositive("-workers", *workers); err != nil {
		return err
	}
	if *readTimeout <= 0 || *writeTimeout <= 0 {
		return errors.New("-read-timeout and -write-timeout must be positive")
	}
	if *watch < 0 {
		return errors.New("-watch must be >= 0")
	}
	if *maxStreams < 0 {
		return errors.New("-max-streams must be >= 0")
	}
	path := *model
	if path == "" {
		path = *models
	}
	s, err := newServerOpts(registry.Options{
		Path:          path,
		Shadow:        *shadowPath,
		RequireStaged: *earlyExit,
	}, *workers, *earlyExit)
	if err != nil {
		return err
	}
	s.streamReadTimeout = *readTimeout
	s.streamWriteTimeout = *writeTimeout
	s.maxStreams = *maxStreams
	if *traceSample > 0 {
		s.mw.SampleEvery = *traceSample
		s.mw.Log = s.log
	}
	if *watch > 0 {
		go s.watchLoop(ctx, *watch)
	}
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("-pprof: %w", err)
		}
		fmt.Printf("udtserve: pprof on %s\n", pln.Addr())
		// Best-effort: a dying pprof listener must not take serving down.
		go func() {
			if err := http.Serve(pln, pprofMux()); err != nil {
				fmt.Fprintf(os.Stderr, "udtserve: pprof listener: %v\n", err)
			}
		}()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("udtserve: serving %d model(s) [%s] from %s on %s, workers=%d\n",
		s.reg.Len(), joinNames(s.reg.Names()), path, ln.Addr(), *workers)
	srv := &http.Server{
		Handler:      s.handler(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, drain in-flight requests.
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return err
		}
		s.reg.Close()
		fmt.Println("udtserve: shut down")
		return nil
	}
}

// joinNames renders the registry's model names for the startup line.
func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " "
		}
		out += n
	}
	return out
}

// maxBody bounds a request body; a 16 MiB batch is far beyond any sane
// classification request.
const maxBody = 16 << 20

type server struct {
	// reg is the named model table: per-entry refcounted generations,
	// serialised reloads, per-model metrics and stream budgets, shadow
	// generations. The legacy single-model routes serve its default entry.
	reg     *registry.Registry
	workers int
	started time.Time
	mtr     metrics

	// log is the structured JSON logger shared by the watch poller, the
	// registry's close-error reporting, and (when tracing) the access log.
	log *slog.Logger

	// mw is the shared request middleware: request IDs, Accept negotiation,
	// endpoint accounting, and (when SampleEvery > 0) trace sampling.
	mw obs.Middleware
	// rt collects process runtime metrics on /metrics scrapes.
	rt obs.RuntimeStats

	// Per-line deadline extensions for the stream endpoint (the server's
	// global read/write timeouts are per-request, which would kill a long
	// interactive stream mid-flight).
	streamReadTimeout  time.Duration
	streamWriteTimeout time.Duration

	// Stream admission control: at most maxStreams concurrent
	// /classify/stream requests across all models when positive (0 =
	// unlimited); excess requests get 503 + Retry-After instead of a
	// worker-pool slot. Each registry entry may layer a tighter per-model
	// budget underneath.
	maxStreams    int
	activeStreams atomic.Int64

	// earlyExit switches prediction to staged early exit (-early-exit):
	// classes stay byte-identical to full evaluation, distributions are not
	// produced, and membersEvaluated counters flow to clients and /metrics.
	// Set at construction and immutable afterwards.
	earlyExit bool
}

// newServer loads and compiles a single model file as the default entry.
func newServer(modelPath string, workers int) (*server, error) {
	return newServerMode(modelPath, workers, false)
}

// newServerMode is newServer plus the early-exit prediction mode.
func newServerMode(modelPath string, workers int, earlyExit bool) (*server, error) {
	return newServerOpts(registry.Options{Path: modelPath, RequireStaged: earlyExit}, workers, earlyExit)
}

// newServerOpts builds the server over a model registry: a single file, a
// directory of models, or a manifest, per registry.Open.
func newServerOpts(opts registry.Options, workers int, earlyExit bool) (*server, error) {
	log := opts.Log
	if log == nil {
		log = slog.New(slog.NewJSONHandler(os.Stderr, nil))
		opts.Log = log
	}
	reg, err := registry.Open(opts)
	if err != nil {
		return nil, err
	}
	return &server{
		reg:                reg,
		workers:            workers,
		started:            time.Now(),
		log:                log,
		streamReadTimeout:  10 * time.Second,
		streamWriteTimeout: 30 * time.Second,
		earlyExit:          earlyExit,
	}, nil
}

// watchLoop polls every registry entry's model file identity (mtime + size)
// and hot-reloads changed ones until the context ends. A failed reload
// leaves the old model serving and retries on the next change (a broken file
// that stays broken is reported once per write, not once per tick).
// Outcomes are structured log records, machine-parseable at registry-scale
// reload churn.
func (s *server) watchLoop(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for _, res := range s.reg.Poll() {
			if res.Err != nil {
				s.mtr.watchErrors.Add(1)
				s.log.Error("watch reload failed",
					"model", res.Entry.Name, "path", res.Entry.Path, "err", res.Err)
				continue
			}
			s.mtr.watchReloads.Add(1)
			s.log.Info("watch reloaded",
				"model", res.Entry.Name, "path", res.Entry.Path,
				"description", res.Describe, "generation", res.Generation)
		}
	}
}

// Content types the server produces.
const (
	jsonType   = "application/json"
	ndjsonType = "application/x-ndjson"
)

// textType is the bare media type of the Prometheus exposition, for Accept
// negotiation (obs.TextType carries the full versioned parameters).
const textType = "text/plain"

func (s *server) handler() http.Handler {
	// Per-request model metrics resolvers for WrapModel: the legacy routes
	// feed the default entry's counters, the /v1 routes the named entry's.
	// A nil resolution (no default, unknown name) leaves only the endpoint
	// counters moving; the handler then refuses the request.
	defEM := func(pick func(*registry.Metrics) *obs.EndpointMetrics) func(*http.Request) *obs.EndpointMetrics {
		return func(*http.Request) *obs.EndpointMetrics {
			if e := s.reg.Default(); e != nil {
				return pick(&e.Metrics)
			}
			return nil
		}
	}
	namedEM := func(pick func(*registry.Metrics) *obs.EndpointMetrics) func(*http.Request) *obs.EndpointMetrics {
		return func(r *http.Request) *obs.EndpointMetrics {
			if e := s.reg.Get(r.PathValue("model")); e != nil {
				return pick(&e.Metrics)
			}
			return nil
		}
	}
	pickClassify := func(m *registry.Metrics) *obs.EndpointMetrics { return &m.Classify }
	pickStream := func(m *registry.Metrics) *obs.EndpointMetrics { return &m.Stream }

	mux := http.NewServeMux()
	mux.HandleFunc("POST /classify",
		s.mw.WrapModel("classify", &s.mtr.classify, defEM(pickClassify), []string{jsonType}, s.classify))
	mux.HandleFunc("POST /classify/stream",
		s.mw.WrapModel("classifyStream", &s.mtr.stream, defEM(pickStream), []string{ndjsonType}, s.classifyStream))
	mux.HandleFunc("POST /reload", s.mw.Wrap("reload", &s.mtr.reload, []string{jsonType}, s.reload))
	mux.HandleFunc("GET /healthz", s.mw.Wrap("healthz", &s.mtr.healthz, []string{jsonType}, s.healthz))
	mux.HandleFunc("GET /metrics", s.mw.Wrap("metrics", &s.mtr.metricsEP, []string{jsonType, textType}, s.metricsHandler))

	mux.HandleFunc("POST /v1/models/{model}/classify",
		s.mw.WrapModel("modelClassify", &s.mtr.modelClassify, namedEM(pickClassify), []string{jsonType}, s.modelClassify))
	mux.HandleFunc("POST /v1/models/{model}/classify/stream",
		s.mw.WrapModel("modelClassifyStream", &s.mtr.modelStream, namedEM(pickStream), []string{ndjsonType}, s.modelClassifyStream))
	mux.HandleFunc("POST /v1/models/{model}/reload",
		s.mw.Wrap("modelReload", &s.mtr.modelReload, []string{jsonType}, s.modelReload))
	mux.HandleFunc("GET /v1/models/{model}/healthz",
		s.mw.Wrap("modelHealthz", &s.mtr.modelHealthz, []string{jsonType}, s.modelHealthz))
	mux.HandleFunc("DELETE /v1/models/{model}",
		s.mw.Wrap("modelRemove", &s.mtr.modelRemove, []string{jsonType}, s.modelRemove))
	return mux
}

// defaultEntry resolves the legacy routes' backing entry, refusing with 404
// when the registry has several models and no designated default.
func (s *server) defaultEntry(w http.ResponseWriter) *registry.Entry {
	e := s.reg.Default()
	if e == nil {
		fail(w, http.StatusNotFound,
			fmt.Errorf("no default model (serving: %v); use /v1/models/{name}/...", s.reg.Names()))
	}
	return e
}

// namedEntry resolves a /v1/models/{model}/... route's entry.
func (s *server) namedEntry(w http.ResponseWriter, r *http.Request) *registry.Entry {
	name := r.PathValue("model")
	e := s.reg.Get(name)
	if e == nil {
		fail(w, http.StatusNotFound, fmt.Errorf("no model %q (serving: %v)", name, s.reg.Names()))
	}
	return e
}

// pprofMux serves net/http/pprof on its own mux for the -pprof listener,
// keeping the profiling surface off the serving handler entirely.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

type requestJSON struct {
	Num    []json.RawMessage   `json:"num"`
	Cat    []json.RawMessage   `json:"cat"`
	Tuples []modelio.WireTuple `json:"tuples"`
}

type resultJSON struct {
	Class string             `json:"class"`
	Dist  map[string]float64 `json:"dist,omitempty"`
	// MembersEvaluated is set only in -early-exit mode: the ensemble members
	// evaluated before the argmax settled (early exit produces no
	// distribution — it stops before the full one exists).
	MembersEvaluated int `json:"membersEvaluated,omitempty"`
}

func (s *server) classify(w http.ResponseWriter, r *http.Request) {
	if e := s.defaultEntry(w); e != nil {
		s.classifyEntry(e, w, r)
	}
}

func (s *server) modelClassify(w http.ResponseWriter, r *http.Request) {
	if e := s.namedEntry(w, r); e != nil {
		s.classifyEntry(e, w, r)
	}
}

func (s *server) classifyEntry(e *registry.Entry, w http.ResponseWriter, r *http.Request) {
	// tr is nil for unsampled requests; every Trace method accepts that, so
	// the span calls below cost one nil check each when tracing is off.
	tr := obs.TraceFrom(r.Context())
	// One acquire: the whole request is served by this model instance even if
	// a concurrent reload swaps the pointer mid-flight, and a binary model's
	// mapping stays alive until the reference is released.
	am := e.Acquire()
	if am == nil {
		fail(w, http.StatusNotFound, fmt.Errorf("model %q evicted", e.Name))
		return
	}
	defer am.Release()
	classes, numAttrs, catAttrs := am.Model.Schema()

	tr.Begin(obs.SpanDecode)
	var req requestJSON
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	batch := req.Tuples != nil
	if batch && (req.Num != nil || req.Cat != nil) {
		fail(w, http.StatusBadRequest, errors.New(`use either "tuples" or a single "num"/"cat" body, not both`))
		return
	}
	if !batch {
		req.Tuples = []modelio.WireTuple{{Num: req.Num, Cat: req.Cat}}
	}
	tuples := make([]*udt.Tuple, len(req.Tuples))
	for i, tj := range req.Tuples {
		tu, err := tj.Decode(numAttrs, catAttrs)
		if err != nil {
			fail(w, http.StatusBadRequest, fmt.Errorf("tuple %d: %w", i, err))
			return
		}
		tuples[i] = tu
	}
	tr.End(obs.SpanDecode)
	tr.AddTuples(len(tuples))
	s.mtr.observeBatch(len(tuples))
	e.Metrics.Tuples.Add(int64(len(tuples)))
	var results []resultJSON
	preds := make([]int, len(tuples))
	var dists [][]float64
	tr.Begin(obs.SpanClassify)
	if s.earlyExit {
		// The registry guarantees every served model is Staged in this mode.
		var evaluated []int
		preds, evaluated = am.Model.(modelio.Staged).PredictBatchEarlyExit(tuples, s.workers)
		s.mtr.observeEarlyExit(evaluated)
		results = make([]resultJSON, len(preds))
		members := 0
		for i, p := range preds {
			members += evaluated[i]
			results[i] = resultJSON{Class: classes[p], MembersEvaluated: evaluated[i]}
		}
		tr.AddMembers(members)
	} else {
		dists = am.Model.ClassifyBatch(tuples, s.workers)
		results = make([]resultJSON, len(dists))
		for i, dist := range dists {
			m := make(map[string]float64, len(dist))
			for c, p := range dist {
				m[classes[c]] = p
			}
			preds[i] = eval.Argmax(dist)
			results[i] = resultJSON{Class: classes[preds[i]], Dist: m}
		}
	}
	// Shadow mirror: the candidate generation classifies the same tuples and
	// divergence lands in the entry's counters. Synchronous by design (dists
	// is nil in early-exit mode — argmax comparison only).
	if e.ShadowPath != "" {
		e.ShadowCompare(tuples, preds, dists, s.workers)
	}
	tr.End(obs.SpanClassify)
	tr.Begin(obs.SpanEncode)
	if batch {
		reply(w, map[string]any{"results": results})
	} else {
		reply(w, results[0])
	}
	tr.End(obs.SpanEncode)
}

// maxStreamLine bounds one NDJSON input line; a single tuple document
// beyond 1 MiB is malformed, not big.
const maxStreamLine = 1 << 20

func (s *server) classifyStream(w http.ResponseWriter, r *http.Request) {
	if e := s.defaultEntry(w); e != nil {
		s.classifyStreamEntry(e, w, r)
	}
}

func (s *server) modelClassifyStream(w http.ResponseWriter, r *http.Request) {
	if e := s.namedEntry(w, r); e != nil {
		s.classifyStreamEntry(e, w, r)
	}
}

// classifyStreamEntry handles a classify/stream request against one entry:
// each request line is one tuple document, each response line one result
// object, decoded, classified and flushed as it arrives — the whole stream
// is never resident, so body size is unbounded (per line, maxStreamLine
// applies). A malformed line produces an error object on its line and the
// stream continues; the HTTP status is 200 once the first line has been
// answered, so per-line errors are in-band by design. Response lines are
// modelio.StreamResult documents, the same protocol "udtree predict -format
// ndjson" emits.
//
// Admission is two-layered: the global -max-streams cap guards the worker
// pool against stream floods of any shape, then the entry's MaxStreams
// budget guards one model's share — both refuse with 503 + Retry-After
// instead of queueing.
func (s *server) classifyStreamEntry(e *registry.Entry, w http.ResponseWriter, r *http.Request) {
	// The active gauges count every stream, capped or not, so /metrics
	// reports stream load even in the default unlimited configuration.
	n := s.activeStreams.Add(1)
	defer s.activeStreams.Add(-1)
	en := e.ActiveStreams.Add(1)
	defer e.ActiveStreams.Add(-1)
	if s.maxStreams > 0 && n > int64(s.maxStreams) {
		s.mtr.streamRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		fail(w, http.StatusServiceUnavailable,
			fmt.Errorf("stream admission: %d streams already active (cap %d); retry shortly", n-1, s.maxStreams))
		return
	}
	if e.MaxStreams > 0 && en > int64(e.MaxStreams) {
		e.Metrics.StreamRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		fail(w, http.StatusServiceUnavailable,
			fmt.Errorf("stream admission: model %q has %d streams active (budget %d); retry shortly", e.Name, en-1, e.MaxStreams))
		return
	}

	// One acquire: the whole stream is classified by one model generation
	// even if a reload swaps the pointer mid-stream; the reference keeps a
	// binary model's mapping alive for the stream's full duration.
	am := e.Acquire()
	if am == nil {
		fail(w, http.StatusNotFound, fmt.Errorf("model %q evicted", e.Name))
		return
	}
	defer am.Release()
	classes, numAttrs, catAttrs := am.Model.Schema()

	// HTTP/1.x is half-duplex by default: the first response write closes
	// the request body, so an interactive client that waits for answer N
	// before sending line N+1 would deadlock. This endpoint is full-duplex
	// by design; the error return is ignored because transports that do not
	// support the upgrade (HTTP/2) are full-duplex already.
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex()

	w.Header().Set("Content-Type", ndjsonType)
	enc := json.NewEncoder(w)
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), maxStreamLine)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		out := modelio.StreamResult{Line: line}
		var wt modelio.WireTuple
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&wt); err != nil {
			out.Error = fmt.Sprintf("decode: %v", err)
		} else if dec.More() {
			// Two concatenated documents (or a document followed by junk)
			// must not be half-accepted with the tail silently dropped.
			out.Error = "decode: trailing data after tuple document"
		} else if tu, err := wt.Decode(numAttrs, catAttrs); err != nil {
			out.Error = err.Error()
		} else {
			// Count the tuple but keep the batch-size histogram for
			// /classify callers only: a long stream would otherwise drown
			// the size-1 bucket. Stream volume has its own counters.
			s.mtr.tuples.Add(1)
			e.Metrics.Tuples.Add(1)
			if s.earlyExit {
				class, k := am.Model.(modelio.Staged).PredictEarlyExit(tu)
				s.mtr.earlyExitPredictions.Add(1)
				s.mtr.earlyExitMembers.Add(int64(k))
				if e.ShadowPath != "" {
					e.ShadowCompare([]*udt.Tuple{tu}, []int{class}, nil, 1)
				}
				out = modelio.NewStagedResult(line, classes, class, k)
			} else {
				dist := am.Model.Classify(tu)
				if e.ShadowPath != "" {
					e.ShadowCompare([]*udt.Tuple{tu}, []int{eval.Argmax(dist)}, [][]float64{dist}, 1)
				}
				out = modelio.NewStreamResult(line, classes, dist)
			}
		}
		s.mtr.streamLines.Add(1)
		if out.Error != "" {
			s.mtr.streamLineErrors.Add(1)
		}
		if err := enc.Encode(out); err != nil {
			return // client went away; nothing to report to
		}
		rc.Flush()
		// The server's -read-timeout/-write-timeout are per-request
		// deadlines, which would cut an interactive stream that simply
		// outlives them; roll both forward per answered line so the
		// timeouts bound idleness, not total stream duration. Errors are
		// ignored: writers that cannot set deadlines (tests, HTTP/2
		// internals) just keep their original ones.
		rc.SetReadDeadline(time.Now().Add(s.streamReadTimeout))
		rc.SetWriteDeadline(time.Now().Add(s.streamWriteTimeout))
	}
	if err := sc.Err(); err != nil {
		// Body read failed mid-stream (oversized line, disconnect): emit a
		// final in-band error object.
		s.mtr.streamLineErrors.Add(1)
		enc.Encode(modelio.StreamResult{Line: line + 1, Error: fmt.Sprintf("read: %v", err)})
	}
}

func (s *server) reload(w http.ResponseWriter, r *http.Request) {
	if e := s.defaultEntry(w); e != nil {
		s.reloadEntry(e, w)
	}
}

func (s *server) modelReload(w http.ResponseWriter, r *http.Request) {
	if e := s.namedEntry(w, r); e != nil {
		s.reloadEntry(e, w)
	}
}

// reloadEntry serves POST reload over the entry's serialised reload path.
func (s *server) reloadEntry(e *registry.Entry, w http.ResponseWriter) {
	am, err := e.Reload()
	if err != nil {
		fail(w, http.StatusInternalServerError, fmt.Errorf("reload: %w", err))
		return
	}
	reply(w, map[string]any{
		"status":      "reloaded",
		"name":        e.Name,
		"model":       e.Path,
		"generation":  am.Generation,
		"description": am.Model.Describe(),
	})
}

// modelRemove serves DELETE /v1/models/{model}: the entry leaves the table
// immediately, in-flight requests drain, and the model closes (unmaps) after
// the last of them.
func (s *server) modelRemove(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	if _, err := s.reg.Remove(name); err != nil {
		fail(w, http.StatusNotFound, err)
		return
	}
	s.log.Info("model evicted", "model", name)
	reply(w, map[string]any{"status": "evicted", "name": name})
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	// Legacy healthz keeps working with no default entry: liveness plus the
	// registry's model names, without per-model fields.
	e := s.reg.Default()
	if e == nil {
		version, commit := cliutil.BuildInfo()
		reply(w, map[string]any{
			"status":    "ok",
			"models":    s.reg.Names(),
			"uptime":    time.Since(s.started).Round(time.Second).String(),
			"version":   version,
			"commit":    commit,
			"goVersion": runtime.Version(),
		})
		return
	}
	s.healthzEntry(e, w)
}

func (s *server) modelHealthz(w http.ResponseWriter, r *http.Request) {
	if e := s.namedEntry(w, r); e != nil {
		s.healthzEntry(e, w)
	}
}

func (s *server) healthzEntry(e *registry.Entry, w http.ResponseWriter) {
	am := e.Acquire()
	if am == nil {
		fail(w, http.StatusNotFound, fmt.Errorf("model %q evicted", e.Name))
		return
	}
	defer am.Release()
	classes, _, _ := am.Model.Schema()
	version, commit := cliutil.BuildInfo()
	resp := map[string]any{
		"status":      "ok",
		"name":        e.Name,
		"model":       e.Path,
		"models":      s.reg.Names(),
		"description": am.Model.Describe(),
		"generation":  am.Generation,
		"loadedAt":    am.LoadedAt.UTC().Format(time.RFC3339),
		"classes":     classes,
		"uptime":      time.Since(s.started).Round(time.Second).String(),
		"version":     version,
		"commit":      commit,
		"goVersion":   runtime.Version(),
		// The on-disk container the model was loaded from: "json" or
		// "binary" (mmap-served). Operators verifying a binary rollout read
		// this field.
		"container": modelio.ContainerFormat(am.Model),
	}
	if e.ShadowPath != "" {
		resp["shadow"] = e.ShadowPath
	}
	// AsForest/TreeSource rather than concrete types: binary-loaded models
	// are wrapper types carrying their mapping.
	if m, ok := modelio.AsForest(am.Model); ok {
		resp["format"] = "forest"
		resp["formatVersion"] = forest.Version
		resp["kind"] = m.Kind()
		resp["trees"] = m.NumTrees()
		resp["nodes"] = m.Stats().Nodes
		if m.Kind() == forest.KindBoosted {
			// Uniform bagged weights carry no information; boosted alphas are
			// the model's vote structure, worth surfacing to operators.
			resp["memberWeights"] = m.Weights()
		}
		if m.OOB.Evaluated > 0 {
			resp["oob"] = m.OOB
		}
	} else if ts, ok := am.Model.(interface{ Stats() core.BuildStats }); ok {
		resp["format"] = "tree"
		resp["nodes"] = ts.Stats().Nodes
	}
	reply(w, resp)
}

// --- metrics -------------------------------------------------------------

// batchBuckets is the number of power-of-two batch-size histogram buckets:
// 1, 2, 3-4, 5-8, ..., the last bucket collecting everything beyond 2^13.
const batchBuckets = 15

type metrics struct {
	classify  obs.EndpointMetrics
	stream    obs.EndpointMetrics
	reload    obs.EndpointMetrics
	healthz   obs.EndpointMetrics
	metricsEP obs.EndpointMetrics

	// The /v1/models/{model}/... routes' endpoint dimension; the per-model
	// dimension lives on each registry entry and is fed by the same
	// middleware observation (obs.Middleware.WrapModel).
	modelClassify obs.EndpointMetrics
	modelStream   obs.EndpointMetrics
	modelReload   obs.EndpointMetrics
	modelHealthz  obs.EndpointMetrics
	modelRemove   obs.EndpointMetrics

	tuples atomic.Int64
	// batchTuples counts only the tuples recorded by observeBatch (tuples
	// minus the stream endpoint's), so it is the exact sum of the batch-size
	// histogram — which the Prometheus view needs for its _sum series.
	batchTuples atomic.Int64
	batch       [batchBuckets]atomic.Int64

	streamLines      atomic.Int64 // NDJSON lines answered (results + errors)
	streamLineErrors atomic.Int64 // NDJSON lines answered with an error object
	streamRejected   atomic.Int64 // streams refused by -max-streams admission control
	watchReloads     atomic.Int64 // successful -watch hot reloads
	watchErrors      atomic.Int64 // failed -watch reload attempts

	earlyExitPredictions atomic.Int64 // predictions served in -early-exit mode
	earlyExitMembers     atomic.Int64 // ensemble members evaluated across them
}

// observeEarlyExit records one early-exit batch's members-evaluated counts.
func (m *metrics) observeEarlyExit(evaluated []int) {
	var members int64
	for _, k := range evaluated {
		members += int64(k)
	}
	m.earlyExitPredictions.Add(int64(len(evaluated)))
	m.earlyExitMembers.Add(members)
}

// observeBatch records one classify call of n tuples.
func (m *metrics) observeBatch(n int) {
	if n <= 0 {
		return
	}
	m.tuples.Add(int64(n))
	m.batchTuples.Add(int64(n))
	b := bits.Len(uint(n - 1)) // 1→0, 2→1, 3-4→2, 5-8→3, ...
	if b >= batchBuckets {
		b = batchBuckets - 1
	}
	m.batch[b].Add(1)
}

// bucketLabel renders histogram bucket b's tuple-count range.
func bucketLabel(b int) string {
	if b == 0 {
		return "1"
	}
	if b == batchBuckets-1 {
		return fmt.Sprintf("%d+", (1<<(b-1))+1)
	}
	lo, hi := (1<<(b-1))+1, 1<<b
	if lo == hi {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("%d-%d", lo, hi)
}

// defaultGeneration reports the default entry's generation, 0 when the
// registry has no default (the legacy udt_model_generation series and JSON
// field keep existing either way).
func (s *server) defaultGeneration() int64 {
	if e := s.reg.Default(); e != nil {
		return e.Generation()
	}
	return 0
}

func (s *server) metricsHandler(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "prometheus":
		s.promMetrics(w)
		return
	case "json":
	case "":
		// No explicit format: a client whose Accept header admits text/plain
		// but not application/json (a Prometheus scraper) gets the text
		// exposition; everyone else gets JSON. Wrap has already refused
		// clients that accept neither with 406.
		accept := r.Header.Values("Accept")
		if !obs.Accepts(accept, jsonType) && obs.Accepts(accept, textType) {
			s.promMetrics(w)
			return
		}
	default:
		fail(w, http.StatusBadRequest, fmt.Errorf("unknown format %q: want json or prometheus", format))
		return
	}
	hist := map[string]int64{}
	for b := range s.mtr.batch {
		if n := s.mtr.batch[b].Load(); n > 0 {
			hist[bucketLabel(b)] = n
		}
	}
	modelsDoc := map[string]any{}
	for _, e := range s.reg.Entries() {
		doc := map[string]any{
			"generation":     e.Generation(),
			"tuples":         e.Metrics.Tuples.Load(),
			"classify":       e.Metrics.Classify.Snapshot(),
			"classifyStream": e.Metrics.Stream.Snapshot(),
			"streams": map[string]int64{
				"active":   e.ActiveStreams.Load(),
				"rejected": e.Metrics.StreamRejected.Load(),
				"budget":   int64(e.MaxStreams),
			},
		}
		if e.ShadowPath != "" {
			doc["shadow"] = map[string]any{
				"path":             e.ShadowPath,
				"comparisons":      e.Metrics.ShadowComparisons.Load(),
				"argmaxDivergence": e.Metrics.ShadowArgmaxDivergence.Load(),
				"distDivergence":   e.Metrics.ShadowDistDivergence.Load(),
			}
		}
		modelsDoc[e.Name] = doc
	}
	version, commit := cliutil.BuildInfo()
	reply(w, map[string]any{
		"uptime":           time.Since(s.started).Round(time.Second).String(),
		"generation":       s.defaultGeneration(),
		"tuplesClassified": s.mtr.tuples.Load(),
		"batchSizes":       hist,
		"build": map[string]string{
			"version":   version,
			"commit":    commit,
			"goVersion": runtime.Version(),
		},
		"runtime": s.rt.Snapshot(),
		"trace":   s.mw.Snapshot(),
		"stream": map[string]int64{
			"lines":      s.mtr.streamLines.Load(),
			"lineErrors": s.mtr.streamLineErrors.Load(),
			"active":     s.activeStreams.Load(),
			"rejected":   s.mtr.streamRejected.Load(),
		},
		"watch": map[string]int64{
			"reloads": s.mtr.watchReloads.Load(),
			"errors":  s.mtr.watchErrors.Load(),
		},
		"earlyExit": map[string]any{
			"enabled":          s.earlyExit,
			"predictions":      s.mtr.earlyExitPredictions.Load(),
			"membersEvaluated": s.mtr.earlyExitMembers.Load(),
		},
		"registry": map[string]any{
			"models":  s.reg.Len(),
			"default": s.reg.DefaultName(),
		},
		"models": modelsDoc,
		"endpoints": map[string]any{
			"classify":            s.mtr.classify.Snapshot(),
			"classifyStream":      s.mtr.stream.Snapshot(),
			"reload":              s.mtr.reload.Snapshot(),
			"healthz":             s.mtr.healthz.Snapshot(),
			"metrics":             s.mtr.metricsEP.Snapshot(),
			"modelClassify":       s.mtr.modelClassify.Snapshot(),
			"modelClassifyStream": s.mtr.modelStream.Snapshot(),
			"modelReload":         s.mtr.modelReload.Snapshot(),
			"modelHealthz":        s.mtr.modelHealthz.Snapshot(),
			"modelRemove":         s.mtr.modelRemove.Snapshot(),
		},
	})
}

// promMetrics writes the Prometheus text exposition of the same counters the
// JSON view reports (tested counter-for-counter against it).
func (s *server) promMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", obs.TextType)
	if err := obs.WriteText(w, s.promFamilies()); err != nil {
		fmt.Fprintln(os.Stderr, "udtserve: write prometheus metrics:", err)
	}
}

// counterFam builds a single-series unlabelled family.
func counterFam(name, help string, t obs.MetricType, v float64) obs.Family {
	return obs.Family{Name: name, Help: help, Type: t, Samples: []obs.Sample{{Value: v}}}
}

// promFamilies renders every /metrics counter as a Prometheus family. Series
// names and label sets are pinned by the golden fixture in testdata — they
// are scrape-target API, renaming one breaks dashboards.
func (s *server) promFamilies() []obs.Family {
	endpoints := []struct {
		name string
		em   *obs.EndpointMetrics
	}{
		{"classify", &s.mtr.classify},
		{"classifyStream", &s.mtr.stream},
		{"reload", &s.mtr.reload},
		{"healthz", &s.mtr.healthz},
		{"metrics", &s.mtr.metricsEP},
		{"modelClassify", &s.mtr.modelClassify},
		{"modelClassifyStream", &s.mtr.modelStream},
		{"modelReload", &s.mtr.modelReload},
		{"modelHealthz", &s.mtr.modelHealthz},
		{"modelRemove", &s.mtr.modelRemove},
	}
	reqs := obs.Family{Name: "udt_requests_total", Help: "Requests served, by endpoint.", Type: obs.Counter}
	errs := obs.Family{Name: "udt_request_errors_total", Help: "Responses with status >= 400, by endpoint.", Type: obs.Counter}
	lat := obs.Family{Name: "udt_request_latency_seconds", Help: "Handler latency, by endpoint.", Type: obs.Histogram}
	for _, ep := range endpoints {
		label := obs.Label{Key: "endpoint", Value: ep.name}
		reqs.Samples = append(reqs.Samples, obs.Sample{Labels: []obs.Label{label}, Value: float64(ep.em.Requests.Load())})
		errs.Samples = append(errs.Samples, obs.Sample{Labels: []obs.Label{label}, Value: float64(ep.em.Errors.Load())})
		lat.Hists = append(lat.Hists,
			obs.HistFromLatency(ep.em.Hist.Snapshot(), float64(ep.em.Nanos.Load())/1e9, label))
	}

	// Per-model families: the second accounting dimension, one series per
	// registry entry (x endpoint for the middleware-fed request metrics).
	mreqs := obs.Family{Name: "udt_model_requests_total", Help: "Requests served, by model and endpoint.", Type: obs.Counter}
	merrs := obs.Family{Name: "udt_model_request_errors_total", Help: "Responses with status >= 400, by model and endpoint.", Type: obs.Counter}
	mlat := obs.Family{Name: "udt_model_request_latency_seconds", Help: "Handler latency, by model and endpoint.", Type: obs.Histogram}
	mtuples := obs.Family{Name: "udt_model_tuples_total", Help: "Tuples classified, by model.", Type: obs.Counter}
	mgen := obs.Family{Name: "udt_registry_generation", Help: "Model generation, by model (1 at load, +1 per reload).", Type: obs.Gauge}
	mstrAct := obs.Family{Name: "udt_model_streams_active", Help: "Currently open streams, by model.", Type: obs.Gauge}
	mstrRej := obs.Family{Name: "udt_model_streams_rejected_total", Help: "Streams refused by the model's stream budget.", Type: obs.Counter}
	mshCmp := obs.Family{Name: "udt_model_shadow_comparisons_total", Help: "Tuples mirrored to the model's shadow generation.", Type: obs.Counter}
	mshArg := obs.Family{Name: "udt_model_shadow_argmax_divergence_total", Help: "Mirrored tuples whose predicted class diverged.", Type: obs.Counter}
	mshDist := obs.Family{Name: "udt_model_shadow_dist_divergence_total", Help: "Mirrored tuples whose distribution diverged.", Type: obs.Counter}
	for _, e := range s.reg.Entries() {
		mlabel := obs.Label{Key: "model", Value: e.Name}
		for _, dim := range []struct {
			endpoint string
			em       *obs.EndpointMetrics
		}{
			{"classify", &e.Metrics.Classify},
			{"classifyStream", &e.Metrics.Stream},
		} {
			labels := []obs.Label{mlabel, {Key: "endpoint", Value: dim.endpoint}}
			mreqs.Samples = append(mreqs.Samples, obs.Sample{Labels: labels, Value: float64(dim.em.Requests.Load())})
			merrs.Samples = append(merrs.Samples, obs.Sample{Labels: labels, Value: float64(dim.em.Errors.Load())})
			mlat.Hists = append(mlat.Hists,
				obs.HistFromLatency(dim.em.Hist.Snapshot(), float64(dim.em.Nanos.Load())/1e9, labels...))
		}
		mtuples.Samples = append(mtuples.Samples, obs.Sample{Labels: []obs.Label{mlabel}, Value: float64(e.Metrics.Tuples.Load())})
		mgen.Samples = append(mgen.Samples, obs.Sample{Labels: []obs.Label{mlabel}, Value: float64(e.Generation())})
		mstrAct.Samples = append(mstrAct.Samples, obs.Sample{Labels: []obs.Label{mlabel}, Value: float64(e.ActiveStreams.Load())})
		mstrRej.Samples = append(mstrRej.Samples, obs.Sample{Labels: []obs.Label{mlabel}, Value: float64(e.Metrics.StreamRejected.Load())})
		mshCmp.Samples = append(mshCmp.Samples, obs.Sample{Labels: []obs.Label{mlabel}, Value: float64(e.Metrics.ShadowComparisons.Load())})
		mshArg.Samples = append(mshArg.Samples, obs.Sample{Labels: []obs.Label{mlabel}, Value: float64(e.Metrics.ShadowArgmaxDivergence.Load())})
		mshDist.Samples = append(mshDist.Samples, obs.Sample{Labels: []obs.Label{mlabel}, Value: float64(e.Metrics.ShadowDistDivergence.Load())})
	}

	// Batch-size histogram: bucket b of the power-of-two array becomes the
	// bucket with upper bound 2^b tuples, the last array slot the overflow.
	batch := obs.Hist{
		UpperBounds: make([]float64, batchBuckets-1),
		Counts:      make([]int64, batchBuckets),
		Sum:         float64(s.mtr.batchTuples.Load()),
	}
	for b := 0; b < batchBuckets-1; b++ {
		batch.UpperBounds[b] = float64(int64(1) << b)
	}
	for b := range s.mtr.batch {
		batch.Counts[b] = s.mtr.batch[b].Load()
	}

	spans := obs.Family{Name: "udt_trace_span_latency_seconds", Help: "Per-span latency of sampled requests.", Type: obs.Histogram}
	for k := obs.SpanKind(0); k < obs.NumSpans; k++ {
		spans.Hists = append(spans.Hists, obs.HistFromLatency(
			s.mw.SpanSnapshot(k), float64(s.mw.SpanTotalNanos(k))/1e9,
			obs.Label{Key: "span", Value: k.String()}))
	}

	version, commit := cliutil.BuildInfo()
	rt := s.rt.Snapshot()
	return []obs.Family{
		{Name: "udt_build_info", Help: "Build metadata; value is always 1.", Type: obs.Gauge,
			Samples: []obs.Sample{{Labels: []obs.Label{
				{Key: "version", Value: version},
				{Key: "commit", Value: commit},
				{Key: "goversion", Value: runtime.Version()},
			}, Value: 1}}},
		counterFam("udt_uptime_seconds", "Seconds since the server started.", obs.Gauge, time.Since(s.started).Seconds()),
		counterFam("udt_model_generation", "Default model generation (1 at startup, +1 per reload).", obs.Gauge, float64(s.defaultGeneration())),
		reqs, errs, lat,
		counterFam("udt_tuples_classified_total", "Tuples classified across /classify and /classify/stream.", obs.Counter, float64(s.mtr.tuples.Load())),
		{Name: "udt_batch_size", Help: "Tuples per /classify request.", Type: obs.Histogram, Hists: []obs.Hist{batch}},
		counterFam("udt_stream_lines_total", "NDJSON stream lines answered (results plus errors).", obs.Counter, float64(s.mtr.streamLines.Load())),
		counterFam("udt_stream_line_errors_total", "NDJSON stream lines answered with an error object.", obs.Counter, float64(s.mtr.streamLineErrors.Load())),
		counterFam("udt_streams_rejected_total", "Streams refused by -max-streams admission control.", obs.Counter, float64(s.mtr.streamRejected.Load())),
		counterFam("udt_streams_active", "Currently open /classify/stream requests.", obs.Gauge, float64(s.activeStreams.Load())),
		counterFam("udt_watch_reloads_total", "Successful -watch hot reloads.", obs.Counter, float64(s.mtr.watchReloads.Load())),
		counterFam("udt_watch_errors_total", "Failed -watch reload attempts.", obs.Counter, float64(s.mtr.watchErrors.Load())),
		counterFam("udt_early_exit_predictions_total", "Predictions served in -early-exit mode.", obs.Counter, float64(s.mtr.earlyExitPredictions.Load())),
		counterFam("udt_early_exit_members_total", "Ensemble members evaluated across early-exit predictions.", obs.Counter, float64(s.mtr.earlyExitMembers.Load())),
		counterFam("udt_registry_models", "Models currently served by the registry.", obs.Gauge, float64(s.reg.Len())),
		mreqs, merrs, mlat, mtuples, mgen, mstrAct, mstrRej, mshCmp, mshArg, mshDist,
		counterFam("udt_trace_sampled_total", "Requests traced by -trace-sample.", obs.Counter, float64(s.mw.Sampled())),
		spans,
		counterFam("udt_go_goroutines", "Live goroutines.", obs.Gauge, float64(rt.Goroutines)),
		counterFam("udt_go_heap_alloc_bytes", "Bytes of allocated heap objects.", obs.Gauge, float64(rt.HeapAllocBytes)),
		counterFam("udt_go_heap_sys_bytes", "Heap memory obtained from the OS.", obs.Gauge, float64(rt.HeapSysBytes)),
		counterFam("udt_go_heap_objects", "Live heap objects.", obs.Gauge, float64(rt.HeapObjects)),
		counterFam("udt_go_gc_cycles_total", "Completed GC cycles.", obs.Counter, float64(rt.GCCycles)),
		{Name: "udt_go_gc_pause_seconds", Help: "Stop-the-world GC pause durations.", Type: obs.Histogram,
			Hists: []obs.Hist{obs.HistFromLatency(rt.GCPauses, float64(rt.GCPauseTotalMicros)/1e6)}},
	}
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", jsonType)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already gone; nothing left to do but log.
		fmt.Fprintln(os.Stderr, "udtserve: encode response:", err)
	}
}

// fail writes a JSON error body carrying the request ID stamped by the obs
// middleware, so a client log line and a server metric line correlate.
func fail(w http.ResponseWriter, code int, err error) {
	obs.Fail(w, code, err)
}
