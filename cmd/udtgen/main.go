// Command udtgen synthesises uncertain datasets in the CSV interchange
// format: either a Table 2 stand-in with injected uncertainty (§4.3) or a
// raw-measurement dataset. Useful for feeding udtree and for building
// reproducible fixtures.
//
// Usage:
//
//	udtgen -dataset Iris -scale 0.5 -w 0.1 -s 100 -out iris.csv
//	udtgen -dataset JapaneseVowel -out jv.csv            # raw samples
//	udtgen -list
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"udt/internal/cliutil"
	"udt/internal/data"
	"udt/internal/uci"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func main() {
	var (
		list    = flag.Bool("list", false, "list available datasets and exit")
		dataset = flag.String("dataset", "Iris", "dataset name (see -list)")
		scale   = flag.Float64("scale", 1.0, "tuple count scale in (0,1]")
		w       = flag.Float64("w", 0.10, "pdf width fraction of attribute range")
		s       = flag.Int("s", 100, "sample points per pdf")
		model   = flag.String("model", "gaussian", "error model: gaussian|uniform")
		seed    = flag.Int64("seed", 1, "RNG seed")
		out     = flag.String("out", "", "output CSV (default stdout); a test split, when the dataset has one, goes to <out>.test.csv")
		perturb = flag.Float64("u", 0, "pre-injection Gaussian perturbation level (Fig 4's u)")
		version = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(cliutil.VersionString("udtgen"))
		return
	}

	if *list {
		fmt.Printf("%-15s %8s %8s %6s %8s %s\n", "name", "train", "test", "attrs", "classes", "kind")
		for _, spec := range uci.Specs {
			kind := "points"
			if spec.RawSamples {
				kind = "raw samples"
			} else if spec.Integer {
				kind = "integer points"
			}
			test := "-"
			if spec.Test > 0 {
				test = fmt.Sprint(spec.Test)
			}
			fmt.Printf("%-15s %8d %8s %6d %8d %s\n", spec.Name, spec.Train, test, spec.Attrs, spec.Classes, kind)
		}
		return
	}

	if err := run(*dataset, *scale, *w, *s, *model, *seed, *out, *perturb); err != nil {
		fmt.Fprintln(os.Stderr, "udtgen:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale, w float64, s int, model string, seed int64, out string, u float64) error {
	spec, err := uci.ByName(dataset)
	if err != nil {
		return err
	}
	var em data.ErrorModel
	switch model {
	case "gaussian":
		em = data.GaussianModel
	case "uniform":
		em = data.UniformModel
	default:
		return fmt.Errorf("unknown error model %q", model)
	}

	var train, test *data.Dataset
	if spec.RawSamples {
		if train, test, err = uci.Raw(spec, scale, seed); err != nil {
			return err
		}
	} else {
		ptsTrain, ptsTest, err := uci.Points(spec, scale, seed)
		if err != nil {
			return err
		}
		if u > 0 {
			rng := newRand(seed)
			ptsTrain = ptsTrain.Perturb(u, rng)
			if ptsTest != nil {
				ptsTest = ptsTest.Perturb(u, rng)
			}
		}
		cfg := data.InjectConfig{W: w, S: s, Model: em}
		if train, err = data.Inject(ptsTrain, cfg); err != nil {
			return err
		}
		if ptsTest != nil {
			if test, err = data.Inject(ptsTest, cfg); err != nil {
				return err
			}
		}
	}

	if err := write(out, train); err != nil {
		return err
	}
	if test != nil {
		testPath := ""
		if out != "" {
			testPath = out + ".test.csv"
		}
		if err := write(testPath, test); err != nil {
			return err
		}
	}
	return nil
}

func write(path string, ds *data.Dataset) error {
	if path == "" {
		return data.WriteCSV(os.Stdout, ds)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := data.WriteCSV(f, ds); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d tuples to %s\n", ds.Len(), path)
	return nil
}
