package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"udt/internal/data"
)

func TestGenerateIrisCSV(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "iris.csv")
	if err := run("Iris", 0.2, 0.1, 10, "gaussian", 1, out, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := data.ReadCSV(f, "iris")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 30 {
		t.Fatalf("generated %d tuples, want 30", ds.Len())
	}
	if ds.Tuples[0].Num[0].NumSamples() != 10 {
		t.Fatalf("pdf has %d samples, want 10", ds.Tuples[0].Num[0].NumSamples())
	}
}

func TestGenerateWithTestSplit(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "sat.csv")
	if err := run("Satellite", 0.01, 0.1, 5, "uniform", 2, out, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out + ".test.csv"); err != nil {
		t.Fatalf("test split not written: %v", err)
	}
}

func TestGenerateRawDataset(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "jv.csv")
	if err := run("JapaneseVowel", 0.05, 0, 0, "gaussian", 3, out, 0); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "@") {
		t.Fatal("raw dataset should serialise pdf cells")
	}
}

func TestGeneratePerturbed(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.csv")
	b := filepath.Join(dir, "b.csv")
	if err := run("Glass", 0.2, 0, 1, "gaussian", 1, a, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("Glass", 0.2, 0, 1, "gaussian", 1, b, 0.2); err != nil {
		t.Fatal(err)
	}
	blobA, _ := os.ReadFile(a)
	blobB, _ := os.ReadFile(b)
	if string(blobA) == string(blobB) {
		t.Fatal("perturbation changed nothing")
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := run("nope", 0.5, 0.1, 10, "gaussian", 1, "", 0); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run("Iris", 0.5, 0.1, 10, "bogus", 1, "", 0); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run("Iris", -1, 0.1, 10, "gaussian", 1, "", 0); err == nil {
		t.Error("bad scale accepted")
	}
}
